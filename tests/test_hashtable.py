"""Unit + property tests for the KV-Direct hash table."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hashtable import HashTable
from repro.core.slab import SlabAllocator
from repro.core.slab_host import HostSlabManager
from repro.dram.host import MemoryImage
from repro.errors import ConfigurationError, KeyTooLargeError


def make_table(
    memory_size=1 << 20,
    index_ratio=0.5,
    inline_threshold=20,
):
    """Build a table + allocator over a fresh memory image."""
    memory = MemoryImage(memory_size)
    index_bytes = int(memory_size * index_ratio) // 64 * 64
    num_buckets = index_bytes // 64
    host = HostSlabManager(base=index_bytes, size=memory_size - index_bytes)
    allocator = SlabAllocator(host)
    table = HashTable(
        memory, allocator, num_buckets, inline_threshold=inline_threshold
    )
    return table


class TestBasicOperations:
    def test_put_get(self):
        table = make_table()
        table.put(b"key", b"value")
        assert table.get(b"key") == b"value"

    def test_get_missing(self):
        table = make_table()
        assert table.get(b"nope") is None

    def test_put_overwrites(self):
        table = make_table()
        table.put(b"k", b"v1")
        table.put(b"k", b"v2")
        assert table.get(b"k") == b"v2"
        assert len(table) == 1

    def test_delete(self):
        table = make_table()
        table.put(b"k", b"v")
        assert table.delete(b"k")
        assert table.get(b"k") is None
        assert len(table) == 0

    def test_delete_missing(self):
        table = make_table()
        assert not table.delete(b"ghost")

    def test_contains(self):
        table = make_table()
        table.put(b"k", b"v")
        assert b"k" in table
        assert b"other" not in table

    def test_empty_value(self):
        table = make_table()
        table.put(b"k", b"")
        assert table.get(b"k") == b""

    def test_many_keys(self):
        table = make_table()
        for i in range(2000):
            table.put(b"key%05d" % i, b"val%05d" % i)
        assert len(table) == 2000
        for i in range(0, 2000, 97):
            assert table.get(b"key%05d" % i) == b"val%05d" % i


class TestInlineVsNonInline:
    def test_small_kv_is_inline(self):
        """KV at or below the threshold never touches the slab allocator."""
        table = make_table(inline_threshold=20)
        table.put(b"key", b"0123456789")  # 13 B total
        assert table.allocator.counters["allocs"] == 0
        assert table.get(b"key") == b"0123456789"

    def test_large_kv_uses_slab(self):
        table = make_table(inline_threshold=20)
        table.put(b"key", b"x" * 100)
        assert table.allocator.counters["allocs"] == 1
        assert table.get(b"key") == b"x" * 100

    def test_threshold_boundary(self):
        table = make_table(inline_threshold=10)
        table.put(b"12345", b"67890")  # exactly 10 -> inline
        assert table.allocator.counters["allocs"] == 0
        table.put(b"123456", b"67890")  # 11 -> slab
        assert table.allocator.counters["allocs"] == 1

    def test_zero_threshold_disables_inlining(self):
        table = make_table(inline_threshold=0)
        table.put(b"a", b"")
        assert table.allocator.counters["allocs"] == 1

    def test_inline_to_slab_transition(self):
        """Growing a value past the threshold migrates it out of the index."""
        table = make_table(inline_threshold=20)
        table.put(b"k", b"small")
        table.put(b"k", b"L" * 200)
        assert table.get(b"k") == b"L" * 200
        assert len(table) == 1

    def test_slab_to_inline_stays_correct(self):
        table = make_table(inline_threshold=20)
        table.put(b"k", b"L" * 200)
        table.put(b"k", b"small")
        assert table.get(b"k") == b"small"

    def test_slab_freed_on_delete(self):
        table = make_table()
        table.put(b"k", b"x" * 100)
        table.delete(b"k")
        assert table.allocator.counters["frees"] == 1

    def test_same_class_overwrite_reuses_slab(self):
        table = make_table()
        table.put(b"k", b"a" * 100)
        table.put(b"k", b"b" * 101)  # same 128 B class
        assert table.allocator.counters["allocs"] == 1
        assert table.get(b"k") == b"b" * 101

    def test_class_change_reallocates(self):
        table = make_table()
        table.put(b"k", b"a" * 100)  # 128 B class
        table.put(b"k", b"b" * 400)  # 512 B class
        assert table.allocator.counters["allocs"] == 2
        assert table.allocator.counters["frees"] == 1


class TestMemoryAccessCounts:
    """The paper's headline property: ~1 DMA per GET, ~2 per PUT."""

    def test_inline_get_is_one_access(self):
        table = make_table()
        table.put(b"key", b"tiny")
        table.memory.reset_counters()
        table.get(b"key")
        assert table.memory.accesses == 1

    def test_inline_put_is_two_accesses(self):
        table = make_table()
        table.memory.reset_counters()
        table.put(b"key", b"tiny")
        assert table.memory.accesses == 2  # bucket read + bucket write

    def test_noninline_get_is_two_accesses(self):
        table = make_table()
        table.put(b"key", b"x" * 100)
        table.memory.reset_counters()
        table.get(b"key")
        assert table.memory.accesses == 2  # bucket + record

    def test_noninline_put_is_three_accesses(self):
        table = make_table()
        table.memory.reset_counters()
        table.put(b"key", b"x" * 100)
        assert table.memory.accesses == 3  # bucket read + record + bucket write

    def test_average_get_near_one_at_moderate_utilization(self):
        table = make_table(memory_size=1 << 20, inline_threshold=15)
        i = 0
        while table.utilization() < 0.25:
            table.put(b"k%06d" % i, b"v" * 5)
            i += 1
        table.memory.reset_counters()
        table.get_cost = type(table.get_cost)()
        for j in range(0, i, 7):
            table.get(b"k%06d" % j)
        assert table.get_cost.mean < 1.5

    def test_cost_stats_populated(self):
        table = make_table()
        table.put(b"a", b"1")
        table.get(b"a")
        table.delete(b"a")
        assert table.put_cost.count == 1
        assert table.get_cost.count == 1
        assert table.delete_cost.count == 1


class TestChaining:
    def test_bucket_overflow_chains(self):
        """More colliding KVs than one bucket holds must still be found."""
        table = make_table(memory_size=1 << 16, index_ratio=0.01)
        assert table.num_buckets == 10  # 100 slots for 300 KVs: must chain
        keys = [b"key%04d" % i for i in range(300)]
        for key in keys:
            table.put(key, b"v" * 30)  # 3 slots inline each
        assert table.counters["chained_buckets"] > 0
        for key in keys:
            assert table.get(key) == b"v" * 30

    def test_delete_from_chained_bucket(self):
        table = make_table(memory_size=1 << 16, index_ratio=0.01)
        keys = [b"key%04d" % i for i in range(200)]
        for key in keys:
            table.put(key, b"v" * 30)
        for key in keys[::2]:
            assert table.delete(key)
        for key in keys[1::2]:
            assert table.get(key) == b"v" * 30
        for key in keys[::2]:
            assert table.get(key) is None

    def test_single_bucket_table(self):
        table = make_table(memory_size=1 << 16, index_ratio=64 / (1 << 16))
        assert table.num_buckets == 1
        for i in range(50):
            table.put(b"k%03d" % i, b"v")
        assert len(table) == 50
        assert all(table.get(b"k%03d" % i) == b"v" for i in range(50))


class TestValidation:
    def test_oversize_key(self):
        table = make_table()
        with pytest.raises(KeyTooLargeError):
            table.put(b"k" * 256, b"v")

    def test_oversize_record(self):
        table = make_table()
        with pytest.raises(KeyTooLargeError):
            table.put(b"key", b"v" * 510)

    def test_empty_key(self):
        table = make_table()
        with pytest.raises(KeyTooLargeError):
            table.get(b"")

    def test_non_bytes(self):
        table = make_table()
        with pytest.raises(TypeError):
            table.put("str", b"v")
        with pytest.raises(TypeError):
            table.put(b"k", 42)

    def test_bad_config(self):
        memory = MemoryImage(1 << 16)
        host = HostSlabManager(base=1024, size=(1 << 16) - 1024)
        allocator = SlabAllocator(host)
        with pytest.raises(ConfigurationError):
            HashTable(memory, allocator, num_buckets=0)
        with pytest.raises(ConfigurationError):
            HashTable(memory, allocator, 16, inline_threshold=-1)
        with pytest.raises(ConfigurationError):
            HashTable(memory, allocator, 16, inline_threshold=100)
        with pytest.raises(ConfigurationError):
            HashTable(memory, allocator, 16, base=30)


class TestAccounting:
    def test_stored_bytes_tracks_kv_sizes(self):
        table = make_table()
        table.put(b"abc", b"de")
        assert table.stored_bytes == 5
        table.put(b"abc", b"defg")
        assert table.stored_bytes == 7
        table.delete(b"abc")
        assert table.stored_bytes == 0

    def test_utilization(self):
        table = make_table(memory_size=1 << 20)
        assert table.utilization() == 0.0
        table.put(b"0123456789", b"0123456789")
        assert table.utilization() == pytest.approx(20 / (1 << 20))

    def test_items_scan(self):
        table = make_table()
        expected = {}
        for i in range(100):
            key = b"k%03d" % i
            value = (b"v" * (i % 40)) or b"x"
            table.put(key, value)
            expected[key] = value
        assert dict(table.items()) == expected


class TestPropertyBased:
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "delete"]),
                st.binary(min_size=1, max_size=24),
                st.binary(min_size=0, max_size=120),
            ),
            max_size=200,
        )
    )
    @settings(max_examples=50, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_matches_dict_semantics(self, commands):
        """The hash table behaves exactly like a Python dict."""
        table = make_table(memory_size=1 << 18)
        model = {}
        for action, key, value in commands:
            if action == "put":
                table.put(key, value)
                model[key] = value
            elif action == "get":
                assert table.get(key) == model.get(key)
            else:
                assert table.delete(key) == (key in model)
                model.pop(key, None)
        assert len(table) == len(model)
        for key, value in model.items():
            assert table.get(key) == value

    @given(st.data())
    @settings(max_examples=25, deadline=None)
    def test_stored_bytes_invariant(self, data):
        table = make_table(memory_size=1 << 18)
        model = {}
        for __ in range(50):
            key = data.draw(st.binary(min_size=1, max_size=16))
            value = data.draw(st.binary(min_size=0, max_size=64))
            table.put(key, value)
            model[key] = value
        expected = sum(len(k) + len(v) for k, v in model.items())
        assert table.stored_bytes == expected
