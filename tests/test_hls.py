"""Tests for the HLS toolchain model (section 3.2)."""

import pytest

from repro import constants
from repro.core.hls import (
    CompiledFunction,
    HLSToolchain,
    STRATIX_V_ALMS,
)
from repro.core.vector import FETCH_ADD, FuncKind, FunctionRegistry
from repro.errors import ConfigurationError, KVDirectError


@pytest.fixture
def registry():
    return FunctionRegistry()


@pytest.fixture
def toolchain():
    return HLSToolchain()


class TestDuplication:
    def test_matches_pcie_throughput(self, toolchain):
        """13.2 GB/s over 8 B elements = 1.65 G elements/s; at 180 MHz
        that needs 10 parallel lanes."""
        assert toolchain.duplication_for(8) == 10

    def test_wider_elements_need_fewer_lanes(self, toolchain):
        assert toolchain.duplication_for(8) > toolchain.duplication_for(64)

    def test_at_least_one_lane(self):
        slow = HLSToolchain(clock_hz=1e12)  # absurdly fast clock
        assert slow.duplication_for(8) == 1


class TestCompilation:
    def test_compile_builtin(self, toolchain, registry):
        compiled = toolchain.compile(registry.lookup(FETCH_ADD))
        assert compiled.duplication == 10
        assert compiled.operations >= 1
        assert compiled.alms > 0
        assert FETCH_ADD in toolchain

    def test_compile_is_idempotent(self, toolchain, registry):
        first = toolchain.compile(registry.lookup(FETCH_ADD))
        used = toolchain.alms_used
        second = toolchain.compile(registry.lookup(FETCH_ADD))
        assert first is second
        assert toolchain.alms_used == used

    def test_compile_registry(self, toolchain, registry):
        count = toolchain.compile_registry(registry)
        assert count >= 10  # all builtins
        assert 0 < toolchain.utilization <= 1.0

    def test_complex_lambda_costs_more(self, toolchain, registry):
        simple = toolchain.compile(registry.lookup(FETCH_ADD))
        complex_id = registry.register(
            FuncKind.UPDATE,
            lambda v, d: (v * 3 + d * 7) ^ (v >> 2) | (d << 1),
            name="gnarly",
        )
        gnarly = toolchain.compile(registry.lookup(complex_id))
        assert gnarly.operations > simple.operations
        assert gnarly.alms > simple.alms

    def test_budget_exhaustion(self, registry):
        tiny = HLSToolchain(fpga_alms=2000, user_budget=0.5)
        with pytest.raises(KVDirectError, match="ALMs"):
            for func_id in sorted(registry._functions):
                tiny.compile(registry.lookup(func_id))

    def test_unknown_lookup(self, toolchain):
        with pytest.raises(KVDirectError):
            toolchain.lookup(99)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            HLSToolchain(clock_hz=0)
        with pytest.raises(ConfigurationError):
            HLSToolchain(user_budget=0)


class TestCycleModel:
    def test_cycles_for_vector(self, toolchain, registry):
        compiled = toolchain.compile(registry.lookup(FETCH_ADD))
        # 10 lanes: 10 elements in 1 cycle, 11 in 2.
        assert compiled.cycles_for(10) == 1
        assert compiled.cycles_for(11) == 2
        assert compiled.cycles_for(0) == 0

    def test_throughput_matches_pcie_by_construction(self, toolchain,
                                                     registry):
        """elements/s through the lanes >= PCIe elements/s."""
        compiled = toolchain.compile(registry.lookup(FETCH_ADD))
        lane_rate = compiled.duplication * constants.KV_CLOCK_HZ
        pcie_rate = constants.PCIE_ACHIEVABLE_BANDWIDTH / 8
        assert lane_rate >= pcie_rate


class TestProcessorIntegration:
    def test_lambda_cycles_charged(self, registry):
        """With a toolchain attached, vector ops occupy λ-lane cycles."""
        import struct

        from repro.core.operations import KVOperation, OpType
        from repro.core.processor import KVProcessor
        from repro.core.store import KVDirectStore
        from repro.core.vector import FETCH_ADD
        from repro.sim import Simulator

        def q(*values):
            return struct.pack("<%dq" % len(values), *values)

        sim = Simulator()
        store = KVDirectStore.create(memory_size=2 << 20)
        store.put(b"vec", q(*range(40)))  # 40 elements: 4 cycles at 10 lanes
        toolchain = HLSToolchain()
        toolchain.compile(store.registry.lookup(FETCH_ADD))
        processor = KVProcessor(sim, store, hls=toolchain)
        op = KVOperation(
            OpType.UPDATE_SCALAR2VECTOR, b"vec", func_id=FETCH_ADD,
            param=q(1),
        )
        sim.run(processor.submit(op))
        assert processor.counters["lambda_cycles"] == 4

    def test_uncompiled_lambda_costs_nothing(self):
        import struct

        from repro.core.operations import KVOperation, OpType
        from repro.core.processor import KVProcessor
        from repro.core.store import KVDirectStore
        from repro.core.vector import FETCH_ADD
        from repro.sim import Simulator

        def q(*values):
            return struct.pack("<%dq" % len(values), *values)

        sim = Simulator()
        store = KVDirectStore.create(memory_size=2 << 20)
        store.put(b"vec", q(1, 2))
        processor = KVProcessor(sim, store)  # no toolchain
        op = KVOperation(
            OpType.UPDATE_SCALAR2VECTOR, b"vec", func_id=FETCH_ADD,
            param=q(1),
        )
        sim.run(processor.submit(op))
        assert "lambda_cycles" not in processor.counters
