"""Cross-module integration tests.

The strongest invariant in the system: the *timed* processor (out-of-order
engine, data forwarding, write-backs, DRAM cache, PCIe replay) must be
semantically indistinguishable from a serial dictionary, for any workload,
under any hardware configuration - the hardware may reorder independent
operations but never same-key ones.
"""

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.operations import KVOperation, OpType
from repro.core.processor import KVProcessor, run_closed_loop
from repro.core.store import KVDirectStore
from repro.core.vector import FETCH_ADD, apply_operation
from repro.sim import Simulator


def q(*values):
    return struct.pack("<%dq" % len(values), *values)


def _serial_reference(ops):
    """Apply the op stream serially; returns final state + results."""
    from repro.core.vector import FunctionRegistry

    registry = FunctionRegistry()
    state = {}
    results = []
    for op in ops:
        new_value, result = apply_operation(op, state.get(op.key), registry)
        if new_value is None:
            state.pop(op.key, None)
        else:
            state[op.key] = new_value
        results.append(result)
    return state, results


def _run_timed(ops, **config_overrides):
    sim = Simulator()
    store = KVDirectStore.create(memory_size=2 << 20, **config_overrides)
    processor = KVProcessor(sim, store)
    events = processor.submit_many(ops)
    sim.run(sim.all_of(events))
    sim.run()
    return store, [event.value for event in events]


_OP_STRATEGY = st.lists(
    st.tuples(
        st.sampled_from(["get", "put", "delete", "add"]),
        st.integers(0, 5),  # small key space: maximal conflict pressure
        st.integers(-50, 50),
    ),
    min_size=1,
    max_size=80,
)


def _build_ops(commands):
    ops = []
    for seq, (action, key_index, operand) in enumerate(commands):
        key = b"key%d" % key_index
        if action == "get":
            ops.append(KVOperation.get(key, seq=seq))
        elif action == "put":
            ops.append(KVOperation.put(key, q(operand), seq=seq))
        elif action == "delete":
            ops.append(KVOperation.delete(key, seq=seq))
        else:
            ops.append(KVOperation.update(key, FETCH_ADD, q(operand), seq=seq))
    return ops


class TestProcessorMatchesSerialReference:
    """Same-key operations are linearized in submission order, so the
    timed pipeline's final state AND per-op results must equal a serial
    execution - despite 80 ops being in flight at once."""

    @given(_OP_STRATEGY)
    @settings(
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_with_ooo(self, commands):
        ops = _build_ops(commands)
        expected_state, expected_results = _serial_reference(ops)
        store, results = _run_timed(ops)
        for got, want in zip(results, expected_results):
            assert got.ok == want.ok
            assert got.value == want.value
        assert dict(store.items()) == expected_state

    @given(_OP_STRATEGY)
    @settings(
        max_examples=15,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_without_ooo(self, commands):
        ops = _build_ops(commands)
        expected_state, expected_results = _serial_reference(ops)
        store, results = _run_timed(ops, out_of_order=False)
        for got, want in zip(results, expected_results):
            assert got.value == want.value
        assert dict(store.items()) == expected_state

    @given(_OP_STRATEGY)
    @settings(
        max_examples=15,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    def test_without_nic_dram(self, commands):
        ops = _build_ops(commands)
        expected_state, __ = _serial_reference(ops)
        store, __results = _run_timed(ops, use_nic_dram=False)
        assert dict(store.items()) == expected_state


class TestClosedLoopConservation:
    def test_every_op_answered_exactly_once(self):
        sim = Simulator()
        store = KVDirectStore.create(memory_size=2 << 20)
        processor = KVProcessor(sim, store)
        ops = [
            KVOperation.put(b"k%02d" % (i % 10), q(i), seq=i)
            for i in range(500)
        ]
        stats = run_closed_loop(processor, ops, concurrency=64)
        assert processor.completed == 500
        assert stats["operations"] == 500.0
        # In-flight write-backs may still be draining when the last
        # response fires; run the simulation dry before checking.
        sim.run()
        assert processor.station.inflight == 0
        assert processor.station.busy_slots() == 0
        assert processor.inflight.available == processor.inflight.capacity

    def test_no_response_left_pending(self):
        sim = Simulator()
        store = KVDirectStore.create(memory_size=2 << 20)
        processor = KVProcessor(sim, store)
        events = processor.submit_many(
            [KVOperation.get(b"missing%d" % i, seq=i) for i in range(50)]
        )
        sim.run()
        assert all(e.triggered for e in events)
        assert not processor._contexts


class TestVectorOpsThroughPipeline:
    def test_reduce_and_filter_do_not_dirty(self):
        """Read-only vector ops must not trigger write-backs."""
        sim = Simulator()
        store = KVDirectStore.create(memory_size=2 << 20)
        store.put(b"vec", q(1, 0, 3))
        processor = KVProcessor(sim, store)
        from repro.core.vector import FILTER_NONZERO, REDUCE_SUM

        events = processor.submit_many(
            [
                KVOperation(OpType.REDUCE, b"vec", func_id=REDUCE_SUM,
                            param=q(0), seq=0),
                KVOperation(OpType.FILTER, b"vec", func_id=FILTER_NONZERO,
                            seq=1),
            ]
        )
        sim.run(sim.all_of(events))
        assert events[0].value.value == q(4)
        assert events[1].value.value == q(1, 3)
        assert processor.counters["writebacks"] == 0
        assert store.get(b"vec") == q(1, 0, 3)

    def test_concurrent_vector_updates_linearize(self):
        sim = Simulator()
        store = KVDirectStore.create(memory_size=2 << 20)
        store.put(b"vec", q(0, 0))
        processor = KVProcessor(sim, store)
        events = processor.submit_many(
            [
                KVOperation(
                    OpType.UPDATE_SCALAR2VECTOR, b"vec",
                    func_id=FETCH_ADD, param=q(1), seq=i,
                )
                for i in range(40)
            ]
        )
        sim.run(sim.all_of(events))
        sim.run()
        assert store.get(b"vec") == q(40, 40)


class TestCachedAndUncachedAgree:
    def test_final_state_identical(self):
        """The DRAM cache is a pure performance feature: with and without
        it the store must end in the same state."""
        ops = [
            KVOperation.put(b"k%02d" % (i % 7), q(i), seq=i)
            for i in range(200)
        ] + [KVOperation.delete(b"k%02d" % j, seq=200 + j) for j in range(3)]
        cached_store, __ = _run_timed(list(ops))
        plain_store, __r = _run_timed(list(ops), use_nic_dram=False)
        assert dict(cached_store.items()) == dict(plain_store.items())
