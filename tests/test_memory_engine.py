"""Unit tests for the load dispatcher and the unified memory access engine."""

import pytest

from repro.dram.cache import DramCache
from repro.dram.nic import NICDram
from repro.errors import ConfigurationError
from repro.memory import (
    LoadDispatcher,
    MemoryAccessEngine,
    longtail_hit_rate,
    optimal_dispatch_ratio,
    uniform_hit_rate,
)
from repro.memory.dispatcher import address_hash
from repro.pcie import MultiLinkDMA
from repro.sim import Simulator


class TestAddressHash:
    def test_uniformity(self):
        """The multiplicative hash spreads lines evenly across [0, 1)."""
        buckets = [0] * 10
        n = 20000
        for line in range(n):
            buckets[int(address_hash(line) * 10)] += 1
        for count in buckets:
            assert abs(count - n / 10) < n / 10 * 0.1

    def test_deterministic(self):
        assert address_hash(12345) == address_hash(12345)

    def test_range(self):
        for line in (0, 1, 2**20, 2**31):
            assert 0.0 <= address_hash(line) < 1.0


class TestLoadDispatcher:
    def test_ratio_zero_nothing_cacheable(self):
        dispatcher = LoadDispatcher(0.0)
        assert not any(dispatcher.is_cacheable(i * 64) for i in range(100))

    def test_ratio_one_everything_cacheable(self):
        dispatcher = LoadDispatcher(1.0)
        assert all(dispatcher.is_cacheable(i * 64) for i in range(100))

    def test_fraction_matches_ratio(self):
        dispatcher = LoadDispatcher(0.5)
        n = 10000
        cacheable = sum(
            dispatcher.is_cacheable(i * 64) for i in range(n)
        )
        assert abs(cacheable / n - 0.5) < 0.03

    def test_same_line_same_answer(self):
        dispatcher = LoadDispatcher(0.5)
        assert dispatcher.is_cacheable(128) == dispatcher.is_cacheable(129)

    def test_invalid_ratio(self):
        with pytest.raises(ConfigurationError):
            LoadDispatcher(1.5)
        with pytest.raises(ConfigurationError):
            LoadDispatcher(-0.1)


class TestHitRateModels:
    def test_uniform_hit_rate(self):
        # k = NIC/host = 1/16; with l = 0.5, h = 0.125
        assert uniform_hit_rate(1 / 16, 0.5) == pytest.approx(0.125)

    def test_uniform_clipped_at_one(self):
        assert uniform_hit_rate(0.5, 0.25) == 1.0

    def test_longtail_paper_example(self):
        """Section 3.3.4: ~0.7 hit rate with 1M cache in 1G corpus."""
        # k*n = 1e6 cache entries, l*n = 1e9 corpus entries
        h = longtail_hit_rate(k=1e-3, l=1.0, n=1e9)
        assert h == pytest.approx(0.667, abs=0.05)

    def test_longtail_higher_than_uniform(self):
        k, l, n = 1 / 16, 0.5, 1e6
        assert longtail_hit_rate(k, l, n) > uniform_hit_rate(k, l)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            uniform_hit_rate(0, 0.5)
        with pytest.raises(ValueError):
            longtail_hit_rate(-1, 0.5, 100)


class TestOptimalDispatchRatio:
    def test_balances_loads(self):
        # DRAM as fast as PCIe, hit rate 1 -> l should be ~0.5
        l = optimal_dispatch_ratio(1.0, 1.0, lambda l: 1.0)
        assert l == pytest.approx(0.5, abs=0.01)

    def test_faster_dram_gets_more(self):
        l_fast = optimal_dispatch_ratio(2.0, 1.0, lambda l: 1.0)
        l_slow = optimal_dispatch_ratio(0.5, 1.0, lambda l: 1.0)
        assert l_fast > l_slow

    def test_paper_configuration_near_half(self):
        """12.8 GB/s DRAM vs 13.2 GB/s PCIe with long-tail caching lands in
        the 0.4-0.7 band the paper tunes within."""
        l = optimal_dispatch_ratio(
            12.8, 13.2, lambda l: longtail_hit_rate(1 / 16, l, 1e6)
        )
        assert 0.4 < l < 0.75

    def test_invalid(self):
        with pytest.raises(ValueError):
            optimal_dispatch_ratio(0, 1, lambda l: 1.0)


def _engine(sim, ratio=0.5, nic_lines=64, host_lines=1024, cache=True):
    dma = MultiLinkDMA(sim, link_count=2)
    nic = NICDram(sim)
    dispatcher = LoadDispatcher(ratio)
    dram_cache = (
        DramCache(nic_lines=nic_lines, host_lines=host_lines)
        if cache
        else None
    )
    return MemoryAccessEngine(sim, dma, nic, dispatcher, dram_cache)


class TestMemoryAccessEngine:
    def test_bypass_goes_to_pcie(self):
        sim = Simulator()
        engine = _engine(sim, ratio=0.0)
        sim.run(engine.access(0, 64, write=False))
        assert engine.counters["pcie_direct"] == 1
        assert engine.dma.reads == 1

    def test_cacheable_miss_then_hit(self):
        sim = Simulator()
        engine = _engine(sim, ratio=1.0)
        sim.run(engine.access(0, 64, write=False))
        sim.run(engine.access(0, 64, write=False))
        assert engine.counters["cache_misses"] == 1
        assert engine.counters["cache_hits"] == 1
        assert engine.dma.reads == 1  # only the fill

    def test_hit_faster_than_miss(self):
        sim = Simulator()
        engine = _engine(sim, ratio=1.0)
        start = sim.now
        sim.run(engine.access(0, 64, write=False))
        miss_time = sim.now - start
        start = sim.now
        sim.run(engine.access(0, 64, write=False))
        hit_time = sim.now - start
        assert hit_time < miss_time

    def test_full_line_write_miss_no_fill(self):
        sim = Simulator()
        engine = _engine(sim, ratio=1.0)
        sim.run(engine.access(64, 64, write=True))
        assert engine.dma.reads == 0
        assert engine.counters["fills"] == 0

    def test_dirty_writeback_traffic(self):
        sim = Simulator()
        engine = _engine(sim, ratio=1.0, nic_lines=4, host_lines=16)
        sim.run(engine.access(1 * 64, 64, write=True))  # dirty line 1
        sim.run(engine.access(5 * 64, 64, write=False))  # evicts line 1
        assert engine.counters["writebacks"] == 1
        assert engine.dma.writes == 1

    def test_multi_line_access_fans_out(self):
        sim = Simulator()
        engine = _engine(sim, ratio=0.0)
        sim.run(engine.access(0, 256, write=False))
        assert engine.dma.reads == 4

    def test_no_cache_configured(self):
        sim = Simulator()
        engine = _engine(sim, ratio=1.0, cache=False)
        sim.run(engine.access(0, 64, write=False))
        assert engine.counters["pcie_direct"] == 1

    def test_zero_size_noop(self):
        sim = Simulator()
        engine = _engine(sim)
        sim.run(engine.access(0, 0, write=False))
        assert engine.dma.total_ops == 0

    def test_hit_rate(self):
        sim = Simulator()
        engine = _engine(sim, ratio=1.0)
        sim.run(engine.access(0, 64))
        sim.run(engine.access(0, 64))
        sim.run(engine.access(0, 64))
        assert engine.hit_rate() == pytest.approx(2 / 3)


class TestPartialLineWrites:
    def test_partial_write_miss_fills_first(self):
        """Writing 10 B into an uncached line must fetch the line."""
        sim = Simulator()
        engine = _engine(sim, ratio=1.0)
        sim.run(engine.access(64, 10, write=True))
        assert engine.counters["fills"] == 1
        assert engine.dma.reads == 1

    def test_unaligned_multi_line_write(self):
        """A write straddling two lines touches both (one full, one not)."""
        sim = Simulator()
        engine = _engine(sim, ratio=1.0)
        sim.run(engine.access(32, 64, write=True))  # lines 0 and 1, partial
        assert engine.counters["cache_misses"] == 2
        assert engine.counters["fills"] == 2  # both partial: both fill

    def test_partial_write_hit_needs_no_fill(self):
        sim = Simulator()
        engine = _engine(sim, ratio=1.0)
        sim.run(engine.access(0, 64, write=False))  # fill the line
        sim.run(engine.access(8, 4, write=True))  # partial write, hit
        assert engine.counters["fills"] == 1  # only the initial read
