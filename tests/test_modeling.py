"""Executable versions of docs/MODELING.md's derivations.

Every bottleneck formula in the modeling note is checked against the
simulation it claims to predict, so the documentation cannot silently
drift from the code.
"""

import pytest

from repro import constants
from repro.pcie import DMAEngine, PCIeLinkConfig
from repro.pcie.tlp import effective_op_rate
from repro.sim import Simulator
from repro.sim.stats import mops


def _simulated_dma_rate(payload: int, write: bool, ops: int = 2500) -> float:
    sim = Simulator()
    engine = DMAEngine(sim, PCIeLinkConfig.gen3_x8())

    def issuer():
        issue = engine.write if write else engine.read
        yield sim.all_of([issue(payload) for __ in range(ops)])

    sim.run(sim.process(issuer()))
    sim.run()
    return mops(ops, sim.now) * 1e6  # ops/s


class TestTagBoundFormula:
    def test_little_law_predicts_read_throughput(self):
        """X = tags / (mean latency + serialization), within 10 %."""
        mean_latency = (
            constants.PCIE_DMA_READ_CACHED_NS
            + constants.PCIE_DMA_READ_RANDOM_SPREAD_NS / 2
        )
        serialization = (64 + 26) / (constants.PCIE_GEN3_X8_BANDWIDTH / 1e9)
        request = 26 / (constants.PCIE_GEN3_X8_BANDWIDTH / 1e9)
        predicted = constants.PCIE_DMA_TAGS / (
            (mean_latency + serialization + request) / 1e9
        )
        measured = _simulated_dma_rate(64, write=False)
        assert measured == pytest.approx(predicted, rel=0.10)

    def test_bandwidth_bound_predicts_write_throughput(self):
        """X = raw bandwidth / (payload + TLP overhead), within 10 %."""
        predicted = effective_op_rate(constants.PCIE_GEN3_X8_BANDWIDTH, 64)
        measured = _simulated_dma_rate(64, write=True)
        assert measured == pytest.approx(predicted, rel=0.10)

    def test_large_payloads_are_bandwidth_bound_for_reads_too(self):
        """At 512 B the tag pool stops binding; bandwidth takes over."""
        predicted = effective_op_rate(constants.PCIE_GEN3_X8_BANDWIDTH, 512)
        measured = _simulated_dma_rate(512, write=False)
        assert measured == pytest.approx(predicted, rel=0.15)


class TestClockBoundFormula:
    def test_atomics_reach_most_of_the_clock(self):
        """Forwarded atomics approach f_clock; the residue is pipeline
        fill and the periodic write-back."""
        import struct

        from repro.core.operations import KVOperation
        from repro.core.processor import KVProcessor, run_closed_loop
        from repro.core.store import KVDirectStore
        from repro.core.vector import FETCH_ADD

        sim = Simulator()
        store = KVDirectStore.create(memory_size=2 << 20)
        store.put(b"ctr", struct.pack("<q", 0))
        processor = KVProcessor(sim, store)
        ops = [
            KVOperation.update(b"ctr", FETCH_ADD, struct.pack("<q", 1),
                               seq=i)
            for i in range(4000)
        ]
        stats = run_closed_loop(processor, ops, concurrency=250)
        measured = stats["throughput_mops"] * 1e6
        assert measured > 0.8 * constants.KV_CLOCK_HZ
        assert measured <= constants.KV_CLOCK_HZ * 1.01


class TestNetworkFormula:
    def test_unbatched_bound_is_header_dominated(self):
        """50 Mops = 5 GB/s / ~100 B-per-op, reproduced by the client."""
        from repro.client.client import run_unbatched
        from repro.core.operations import KVOperation
        from repro.core.processor import KVProcessor
        from repro.core.store import KVDirectStore
        from repro.workloads import KeySpace

        sim = Simulator()
        store = KVDirectStore.create(memory_size=4 << 20)
        keyspace = KeySpace(count=1000, kv_size=13)
        for key, value in keyspace.pairs():
            store.put(key, value)
        store.reset_measurements()
        processor = KVProcessor(sim, store)
        ops = [
            KVOperation.get(keyspace.key(i % 1000), seq=i)
            for i in range(3000)
        ]
        stats = run_unbatched(sim, processor, ops, max_outstanding=512)
        per_op_wire = stats.request_bytes_on_wire / stats.operations
        predicted = constants.NETWORK_BANDWIDTH / per_op_wire
        measured = stats.throughput_mops * 1e6
        assert measured == pytest.approx(predicted, rel=0.15)


class TestDispatchEquation:
    @staticmethod
    def _imbalance(l, hit_rate, target):
        h = hit_rate(l)
        dram_load = l * h
        pcie_load = (1 - l) + l * (1 - h)
        return abs(dram_load / pcie_load - target)

    def test_solver_finds_the_best_balance_longtail(self):
        """The returned l minimizes |DRAM/PCIe load ratio - bandwidth
        ratio| over the grid, for the long-tail hit model."""
        from repro.memory import longtail_hit_rate, optimal_dispatch_ratio

        k, n = 1 / 16, 1e6
        hit = lambda l: longtail_hit_rate(k, l, n)
        target = (
            constants.NIC_DRAM_BANDWIDTH / constants.PCIE_ACHIEVABLE_BANDWIDTH
        )
        l = optimal_dispatch_ratio(
            constants.NIC_DRAM_BANDWIDTH,
            constants.PCIE_ACHIEVABLE_BANDWIDTH,
            hit,
        )
        best_grid = min(
            self._imbalance(i / 200, hit, target) for i in range(1, 200)
        )
        assert self._imbalance(l, hit, target) <= best_grid + 1e-6

    def test_uniform_workload_cannot_balance(self):
        """Under uniform, DRAM load is pinned at k regardless of l - the
        equation has no solution, which is WHY the paper says 'caching
        under uniform workload is not efficient'."""
        from repro.memory import uniform_hit_rate

        k = 1 / 16
        ratios = set()
        for i in range(40, 200):  # l > k so the cache is oversubscribed
            l = i / 200
            h = uniform_hit_rate(k, l)
            ratios.add(round(l * h / ((1 - l) + l * (1 - h)), 6))
        assert len(ratios) == 1  # flat: l*(k/l) = k everywhere
