"""Integration tests for multi-NIC scaling."""

import pytest

from repro.core.operations import KVOperation
from repro.errors import ConfigurationError
from repro.multi import MultiNICServer
from repro.sim import Simulator


class TestSharding:
    def test_shard_stable(self):
        server = MultiNICServer(Simulator(), nic_count=4)
        assert server.shard_of(b"key") == server.shard_of(b"key")

    def test_shards_spread(self):
        server = MultiNICServer(Simulator(), nic_count=4)
        shards = {server.shard_of(b"key%04d" % i) for i in range(200)}
        assert shards == {0, 1, 2, 3}

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            MultiNICServer(Simulator(), nic_count=0)


class TestOperations:
    def test_put_get_across_nics(self):
        sim = Simulator()
        server = MultiNICServer(sim, nic_count=3)
        events = [
            server.submit(KVOperation.put(b"key%02d" % i, b"val%02d" % i,
                                          seq=i))
            for i in range(20)
        ]
        sim.run(sim.all_of(events))
        gets = [
            server.submit(KVOperation.get(b"key%02d" % i, seq=100 + i))
            for i in range(20)
        ]
        sim.run(sim.all_of(gets))
        assert [e.value.value for e in gets] == [
            b"val%02d" % i for i in range(20)
        ]

    def test_put_direct(self):
        server = MultiNICServer(Simulator(), nic_count=2)
        server.put_direct(b"k", b"v")
        shard = server.shard_of(b"k")
        assert server.processors[shard].store.get(b"k") == b"v"


class TestScaling:
    """Section 1: near-linear scalability with multiple NICs."""

    def _throughput(self, nic_count, ops_per_nic=1200):
        sim = Simulator()
        server = MultiNICServer(sim, nic_count=nic_count)
        total = ops_per_nic * nic_count
        for i in range(512):
            server.put_direct(b"key%06d" % i, b"v" * 5)
        ops = [
            KVOperation.get(b"key%06d" % (i % 512), seq=i)
            for i in range(total)
        ]
        return server.run_closed_loop(ops)["throughput_mops"]

    def test_two_nics_scale(self):
        one = self._throughput(1)
        two = self._throughput(2)
        assert two > 1.6 * one

    def test_four_nics_scale(self):
        one = self._throughput(1)
        four = self._throughput(4, ops_per_nic=800)
        assert four > 3.0 * one

    def test_stats_shape(self):
        sim = Simulator()
        server = MultiNICServer(sim, nic_count=2)
        server.put_direct(b"k", b"v")
        stats = server.run_closed_loop(
            [KVOperation.get(b"k", seq=i) for i in range(50)]
        )
        assert stats["nics"] == 2.0
        assert stats["operations"] == 50.0
        assert stats["per_nic_mops"] == pytest.approx(
            stats["throughput_mops"] / 2
        )

    def test_sharded_latency_merges_per_shard_histograms(self):
        """Regression: the sharded closed loop reports aggregate latency
        percentiles over the union of all shard histograms, not None and
        not a single shard's view."""
        sim = Simulator()
        server = MultiNICServer(sim, nic_count=4)
        for i in range(256):
            server.put_direct(b"key%06d" % i, b"v" * 5)
        stats = server.run_closed_loop(
            [KVOperation.get(b"key%06d" % (i % 256), seq=i)
             for i in range(800)]
        )
        for field in ("latency_p50_ns", "latency_p95_ns",
                      "latency_p99_ns", "latency_mean_ns"):
            assert stats[field] is not None and stats[field] > 0.0
        assert (stats["latency_p50_ns"] <= stats["latency_p95_ns"]
                <= stats["latency_p99_ns"])
        total = sum(
            proc.latencies.count for proc in server.processors
        )
        assert total == 800

    def test_sharded_latency_none_when_nothing_completes(self):
        """Zero goodput is a valid measurement: an empty merged histogram
        reports None latency fields instead of crashing."""
        sim = Simulator()
        server = MultiNICServer(sim, nic_count=2)
        stats = server.run_closed_loop([])
        assert stats["operations"] == 0.0
        assert stats["latency_p50_ns"] is None
        assert stats["latency_p99_ns"] is None
        assert stats["latency_mean_ns"] is None


class TestNetworkedMultiNIC:
    """Each NIC has its own 40 GbE port; clients drive them in parallel."""

    def test_clients_per_nic(self):
        from repro.client import KVClient

        sim = Simulator()
        server = MultiNICServer(sim, nic_count=3)
        for i in range(300):
            server.put_direct(b"key%04d" % i, b"v" * 5)
        # Partition a GET stream by owning NIC, one client per NIC.
        shards = [[] for __ in range(3)]
        for i in range(900):
            key = b"key%04d" % (i % 300)
            shards[server.shard_of(key)].append(
                KVOperation.get(key, seq=i)
            )
        clients = [
            KVClient(sim, processor, batch_size=16,
                     max_outstanding_batches=8)
            for processor in server.processors
        ]
        processes = [
            sim.process(client._run(ops))
            for client, ops in zip(clients, shards)
            if ops
        ]
        sim.run(sim.all_of(processes))
        total = sum(len(s) for s in shards)
        elapsed = sim.now
        assert total == 900
        # All three ports worked concurrently: aggregate beats 1 port's
        # serial time by construction; check per-client accounting.
        for client, ops in zip(clients, shards):
            if ops:
                assert client.latencies.count == len(ops)

    def test_aggregate_network_throughput_scales(self):
        """N ports give ~N x the network-bound unbatched throughput."""
        from repro.client import KVClient

        def run(nics):
            sim = Simulator()
            server = MultiNICServer(sim, nic_count=nics)
            for i in range(256):
                server.put_direct(b"key%04d" % i, b"v" * 5)
            shards = [[] for __ in range(nics)]
            seq = 0
            for i in range(600 * nics):
                key = b"key%04d" % (i % 256)
                shards[server.shard_of(key)].append(
                    KVOperation.get(key, seq=seq)
                )
                seq += 1
            processes = []
            for processor, ops in zip(server.processors, shards):
                if not ops:
                    continue
                client = KVClient(sim, processor, batch_size=1,
                                  max_outstanding_batches=64)
                processes.append(sim.process(client._run(ops)))
            total = sum(len(s) for s in shards)
            sim.run(sim.all_of(processes))
            return total / sim.now * 1e3  # Mops

        one = run(1)
        three = run(3)
        assert three > 2.2 * one
