"""Unit tests for the network substrate: link, framing, and batching codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import constants
from repro.core.operations import KVOperation, OpType
from repro.errors import ConfigurationError, ProtocolError
from repro.network import (
    BatchEncoder,
    EthernetLink,
    decode_batch,
    encode_batch,
    packet_wire_bytes,
    packets_for_payload,
)
from repro.network.rdma import goodput_fraction, wire_bytes
from repro.sim import Simulator


class TestEthernetLink:
    def test_receive_time(self):
        sim = Simulator()
        link = EthernetLink(sim, bandwidth=5e9, rtt_ns=2000)
        sim.run(link.receive(5000))
        # 5000 B at 5 B/ns + half RTT
        assert sim.now == pytest.approx(1000 + 1000)

    def test_duplex_directions_independent(self):
        sim = Simulator()
        link = EthernetLink(sim, bandwidth=5e9, rtt_ns=0)
        rx = link.receive(5000)
        tx = link.send(5000)
        sim.run(sim.all_of([rx, tx]))
        assert sim.now == pytest.approx(1000)  # not serialized together

    def test_counters(self):
        sim = Simulator()
        link = EthernetLink(sim)
        sim.run(link.receive(100))
        sim.run(link.send(200))
        snap = link.snapshot()
        assert snap["rx_packets"] == 1
        assert snap["tx_bytes"] == 200

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            EthernetLink(Simulator(), bandwidth=0)


class TestRDMAFraming:
    def test_packet_overhead(self):
        assert packet_wire_bytes(0) == constants.RDMA_PACKET_OVERHEAD
        assert packet_wire_bytes(100) == 100 + 88

    def test_packets_for_payload(self):
        assert packets_for_payload(0) == 1
        assert packets_for_payload(1500) == 1
        assert packets_for_payload(1501) == 2

    def test_wire_bytes(self):
        assert wire_bytes(3000) == 3000 + 2 * 88

    def test_goodput_improves_with_batching(self):
        # One tiny KV op (~30 B encoded) per packet vs a full batch.
        small = goodput_fraction(30)
        big = goodput_fraction(1400)
        assert big > small
        # Paper: up to ~4x network throughput from batching (Figure 15).
        assert big / small > 3.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            packet_wire_bytes(-1)


def _ops():
    return [
        KVOperation.put(b"key00001", b"v" * 16),
        KVOperation.put(b"key00002", b"v" * 16),  # same sizes + same value
        KVOperation.get(b"key00001"),
        KVOperation.delete(b"key00002"),
        KVOperation.update(b"key00003", func_id=1, param=b"\x01\x00"),
        KVOperation(
            OpType.UPDATE_VECTOR2VECTOR,
            b"vec",
            value=b"\x02" * 32,
            func_id=2,
            param=b"",
        ),
        KVOperation(OpType.REDUCE, b"vec", func_id=3, param=b"\x00" * 8),
        KVOperation(OpType.FILTER, b"vec", func_id=4),
        KVOperation(OpType.UPDATE_SCALAR2VECTOR, b"vec", func_id=5, param=b"\x07"),
    ]


class TestBatchCodec:
    def test_roundtrip(self):
        ops = _ops()
        decoded = decode_batch(encode_batch(ops))
        assert decoded == ops

    def test_empty_batch(self):
        assert decode_batch(encode_batch([])) == []

    def test_same_size_compression(self):
        """Ops with repeated key/value sizes encode smaller."""
        same = [KVOperation.put(b"k%07d" % i, b"v" * 32) for i in range(10)]
        mixed = [
            KVOperation.put(b"k" * (4 + i % 5), b"v" * (16 + i)) for i in range(10)
        ]
        assert len(encode_batch(same)) < len(encode_batch(mixed))

    def test_same_value_compression(self):
        """Repeated identical values are elided entirely."""
        repeated = [KVOperation.put(b"k%07d" % i, b"V" * 200) for i in range(8)]
        distinct = [
            KVOperation.put(b"k%07d" % i, bytes([i]) * 200) for i in range(8)
        ]
        saved = len(encode_batch(distinct)) - len(encode_batch(repeated))
        assert saved >= 7 * 200 - 16  # 7 elided values minus flag overhead

    def test_truncated_rejected(self):
        data = encode_batch(_ops())
        with pytest.raises(ProtocolError):
            decode_batch(data[:-1])

    def test_trailing_garbage_rejected(self):
        data = encode_batch([KVOperation.get(b"k")])
        with pytest.raises(ProtocolError):
            decode_batch(data + b"\x00")

    def test_bad_opcode_rejected(self):
        # count=1, opcode 0x0F (invalid)
        with pytest.raises(ProtocolError):
            decode_batch(b"\x01\x00\x0f\x01k")

    def test_max_key_length_roundtrips(self):
        """255 B is the u8 key-length field's ceiling and must encode."""
        ops = [
            KVOperation.put(b"k" * 255, b"v"),
            KVOperation.get(b"g" * 255),
        ]
        assert decode_batch(encode_batch(ops)) == ops

    @staticmethod
    def _forged(optype, key, value=None, func_id=0, param=b"", seq=0):
        """An op that skipped dataclass validation (buggy caller / future
        op type): the wire encoder must still enforce its field widths."""
        op = object.__new__(KVOperation)
        for name, val in (
            ("op", optype), ("key", key), ("value", value),
            ("func_id", func_id), ("param", param), ("seq", seq),
        ):
            object.__setattr__(op, name, val)
        return op

    def test_oversized_key_raises_protocol_error(self):
        """Regression: a 256 B key used to surface as an opaque
        ValueError from bytearray.append deep inside the encoder."""
        encoder = BatchEncoder()
        with pytest.raises(ProtocolError, match="255"):
            encoder.add(self._forged(OpType.GET, b"k" * 256))
        # The failed add left no partial op behind.
        assert encoder.count == 0
        assert decode_batch(encoder.finish()) == []

    def test_oversized_value_raises_protocol_error(self):
        encoder = BatchEncoder()
        with pytest.raises(ProtocolError, match="65535"):
            encoder.add(
                self._forged(OpType.PUT, b"k", value=b"v" * 0x10000)
            )
        assert encoder.count == 0

    def test_max_value_length_roundtrips(self):
        ops = [KVOperation.put(b"k", b"v" * 0xFFFF)]
        assert decode_batch(encode_batch(ops)) == ops

    def test_oversized_param_raises_protocol_error(self):
        encoder = BatchEncoder()
        with pytest.raises(ProtocolError, match="param"):
            encoder.add(
                self._forged(
                    OpType.UPDATE_SCALAR, b"k", func_id=1,
                    param=b"p" * 0x10000,
                )
            )
        assert encoder.count == 0

    def test_encoder_incremental_size(self):
        encoder = BatchEncoder()
        assert encoder.payload_size() == 2
        encoder.add(KVOperation.get(b"abc"))
        size_one = encoder.payload_size()
        encoder.add(KVOperation.get(b"def"))  # same klen: smaller increment
        assert encoder.payload_size() - size_one < size_one - 2
        assert encoder.count == 2

    def test_batch_count_limit(self):
        encoder = BatchEncoder()
        encoder._count = 0xFFFF
        with pytest.raises(ProtocolError):
            encoder.add(KVOperation.get(b"k"))

    @given(
        st.lists(
            st.tuples(
                st.sampled_from([OpType.GET, OpType.PUT, OpType.DELETE]),
                st.binary(min_size=1, max_size=64),
                st.binary(min_size=0, max_size=256),
            ),
            max_size=50,
        )
    )
    def test_roundtrip_property(self, specs):
        ops = []
        for op_type, key, value in specs:
            if op_type is OpType.PUT:
                ops.append(KVOperation.put(key, value))
            elif op_type is OpType.GET:
                ops.append(KVOperation.get(key))
            else:
                ops.append(KVOperation.delete(key))
        assert decode_batch(encode_batch(ops)) == ops


class TestKVOperationValidation:
    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            KVOperation.get(b"")

    def test_oversize_key_rejected(self):
        with pytest.raises(ValueError):
            KVOperation.get(b"k" * 256)

    def test_put_requires_value(self):
        with pytest.raises(ValueError):
            KVOperation(OpType.PUT, b"k")

    def test_get_rejects_value(self):
        with pytest.raises(ValueError):
            KVOperation(OpType.GET, b"k", value=b"v")

    def test_get_rejects_func(self):
        with pytest.raises(ValueError):
            KVOperation(OpType.GET, b"k", func_id=1)

    def test_is_write(self):
        assert KVOperation.put(b"k", b"v").is_write
        assert KVOperation.delete(b"k").is_write
        assert KVOperation.update(b"k", 1, b"").is_write
        assert not KVOperation.get(b"k").is_write
        assert not KVOperation(OpType.REDUCE, b"k", func_id=1).is_write

    def test_key_must_be_bytes(self):
        with pytest.raises(TypeError):
            KVOperation.get("string-key")
