"""Tests for the observability layer: metrics registry + tracer."""

import json

import pytest

from repro.client.client import KVClient
from repro.core.processor import KVProcessor
from repro.core.store import KVDirectStore
from repro.dram.cache import CacheStats
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, Tracer
from repro.obs.tracer import UNTIMED, Span
from repro.sim import Counter, Histogram, Simulator
from repro.workloads import KeySpace, WorkloadSpec, YCSBGenerator


class TestRegistryRegistration:
    def test_register_infers_kinds(self):
        registry = MetricsRegistry()
        registry.register("pipe", Counter())
        registry.register("pipe.latency_ns", Histogram())
        registry.register("cache", CacheStats())
        registry.register_gauge("depth", lambda: 3)
        assert len(registry) == 4
        assert "pipe" in registry
        assert registry.names() == [
            "pipe", "pipe.latency_ns", "cache", "depth",
        ]

    def test_callable_registers_as_gauge(self):
        registry = MetricsRegistry()
        registry.register("util", lambda: 0.5)
        assert registry.collect() == {"util": 0.5}

    def test_bad_name_rejected(self):
        registry = MetricsRegistry()
        for bad in ("Pipe", "1x", "a..b", "a.", ".a", "a b"):
            with pytest.raises(ConfigurationError):
                registry.register(bad, Counter())

    def test_duplicate_rejected(self):
        registry = MetricsRegistry()
        registry.register("x", Counter())
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("x", Counter())

    def test_unknown_source_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError, match="cannot register"):
            registry.register("x", object())

    def test_bad_namespace_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry(namespace="9bad")


class TestRegistryExport:
    def _small_registry(self):
        registry = MetricsRegistry()
        counter = registry.register("station", Counter())
        counter.add("issued", 3)
        counter.add("queued", 1)
        hist = registry.register("station.wait_ns", Histogram())
        hist.extend([10.0, 20.0, 30.0, 40.0])
        cache = registry.register("dram.cache", CacheStats())
        cache.hits, cache.misses = 3, 1
        registry.register_gauge("station.occupancy", lambda: 2)
        return registry

    def test_collect_is_flat_and_sorted(self):
        flat = self._small_registry().collect()
        assert list(flat) == sorted(flat)
        assert flat["station.issued"] == 3
        assert flat["station.wait_ns.count"] == 4
        assert flat["station.wait_ns.mean"] == 25.0
        assert flat["station.wait_ns.min"] == 10.0
        assert flat["station.wait_ns.max"] == 40.0
        assert flat["dram.cache.hit_rate"] == 0.75
        assert flat["station.occupancy"] == 2.0

    def test_live_values(self):
        registry = MetricsRegistry()
        counter = registry.register("c", Counter())
        assert registry.collect() == {}
        counter.add("events", 2)
        assert registry.collect() == {"c.events": 2}

    def test_json_round_trips(self):
        registry = self._small_registry()
        data = json.loads(registry.to_json())
        assert data == registry.collect()

    def test_prometheus_golden(self):
        """Exact exposition text for a small, fully controlled registry."""
        registry = MetricsRegistry()
        counter = registry.register("eth", Counter())
        counter.add("rx_packets", 2)
        counter.add("rx_bytes", 128)
        hist = registry.register("lat_ns", Histogram())
        hist.record(2.0)  # one sample: every quantile is exactly 2
        registry.register_gauge("util", lambda: 0.25)
        assert registry.to_prometheus() == (
            "# TYPE kvdirect_eth counter\n"
            "kvdirect_eth_rx_bytes 128\n"
            "kvdirect_eth_rx_packets 2\n"
            "# TYPE kvdirect_lat_ns summary\n"
            'kvdirect_lat_ns{quantile="0.5"} 2\n'
            'kvdirect_lat_ns{quantile="0.95"} 2\n'
            'kvdirect_lat_ns{quantile="0.99"} 2\n'
            "kvdirect_lat_ns_sum 2\n"
            "kvdirect_lat_ns_count 1\n"
            "# TYPE kvdirect_util gauge\n"
            "kvdirect_util 0.25\n"
        )

    def test_empty_histogram_exports_count_only(self):
        registry = MetricsRegistry()
        registry.register("h", Histogram())
        assert registry.collect() == {"h.count": 0}
        assert "kvdirect_h_count 0" in registry.to_prometheus()

    def test_prometheus_sanitizes_dots(self):
        registry = MetricsRegistry()
        registry.register_gauge("a.b.c", lambda: 1)
        text = registry.to_prometheus()
        assert "kvdirect_a_b_c 1" in text
        assert "a.b.c" not in text

    def test_prometheus_sanitizes_derived_hit_rate_family(self):
        # The cache's derived `<name>.hit_rate` gauge family must be
        # sanitized like every other family name.
        registry = MetricsRegistry()
        cache = registry.register("dram.cache", CacheStats())
        cache.hits, cache.misses = 3, 1
        text = registry.to_prometheus()
        assert "# TYPE kvdirect_dram_cache_hit_rate gauge" in text
        assert "kvdirect_dram_cache_hit_rate 0.75" in text
        assert "dram.cache" not in text

    def test_prometheus_dedupes_colliding_type_lines(self):
        # A cache named `x` derives a `x.hit_rate` gauge family; a
        # user-registered gauge of the same name must not produce a
        # second `# TYPE` line for it.
        registry = MetricsRegistry()
        cache = registry.register("x", CacheStats())
        cache.hits, cache.misses = 1, 1
        registry.register_gauge("x.hit_rate", lambda: 0.5)
        text = registry.to_prometheus()
        assert text.count("# TYPE kvdirect_x_hit_rate gauge") == 1
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE")
        ]
        assert len(type_lines) == len(set(type_lines))


class TestTracerUnit:
    def test_invalid_rate_rejected(self):
        for rate in (-0.1, 1.1, 2.0):
            with pytest.raises(ConfigurationError):
                Tracer(sample_rate=rate)

    def test_rate_zero_emits_nothing(self):
        tracer = Tracer(sample_rate=0.0)
        tracer.emit(1, "ingress")
        tracer.emit(-1, "eth.rx")
        assert len(tracer) == 0
        assert tracer.dumps() == ""

    def test_rate_one_emits_everything(self):
        tracer = Tracer(sample_rate=1.0)
        for seq in range(5):
            tracer.emit(seq, "ingress")
        assert len(tracer) == 5

    def test_partial_rate_is_seed_stable(self):
        a = Tracer(sample_rate=0.3, seed=42)
        b = Tracer(sample_rate=0.3, seed=42)
        decisions_a = [a.sampled(s) for s in range(500)]
        decisions_b = [b.sampled(s) for s in range(500)]
        assert decisions_a == decisions_b
        assert any(decisions_a) and not all(decisions_a)

    def test_sampled_fraction_tracks_the_rate(self):
        """Regression: raw FNV-1a of short "seed:seq" strings clustered
        in [0.17, 0.21], making rates outside that band all-or-nothing;
        the avalanche finalizer spreads draws over [0, 1)."""
        for rate in (0.1, 0.3, 0.7):
            tracer = Tracer(sample_rate=rate, seed=7)
            hits = sum(tracer.sampled(s) for s in range(2000))
            assert abs(hits / 2000 - rate) < 0.05, (rate, hits)

    def test_different_seeds_sample_differently(self):
        a = Tracer(sample_rate=0.3, seed=1)
        b = Tracer(sample_rate=0.3, seed=2)
        assert [a.sampled(s) for s in range(500)] != [
            b.sampled(s) for s in range(500)
        ]

    def test_untimed_without_clock(self):
        tracer = Tracer()
        tracer.emit(0, "ingress")
        assert tracer.spans[0].at_ns == UNTIMED

    def test_clock_binding(self):
        tracer = Tracer()
        tracer.bind_clock(lambda: 123.5)
        tracer.emit(0, "ingress", "op=GET")
        span = tracer.spans[0]
        assert span == Span(0, 0, "ingress", 123.5, "op=GET")
        assert span.render() == "000000 seq=0 at=123.500 ingress op=GET"

    def test_explicit_clock_wins_over_bind(self):
        tracer = Tracer(clock=lambda: 1.0)
        tracer.bind_clock(lambda: 2.0)
        tracer.emit(0, "x")
        assert tracer.spans[0].at_ns == 1.0

    def test_stage_counters(self):
        tracer = Tracer()
        tracer.emit(0, "ingress")
        tracer.emit(1, "ingress")
        tracer.emit(0, "complete")
        assert tracer.counters["ingress"] == 2
        assert tracer.counters["complete"] == 1

    def test_reset(self):
        tracer = Tracer()
        tracer.emit(0, "ingress")
        tracer.reset()
        assert len(tracer) == 0
        assert tracer.counters.snapshot() == {}


def _traced_run(seed: int, ops: int = 120, sample: float = 1.0):
    """A small seeded client workload with a tracer attached."""
    sim = Simulator()
    store = KVDirectStore.create(memory_size=4 << 20, seed=seed)
    keyspace = KeySpace(count=200, kv_size=13, seed=seed)
    for key, value in keyspace.pairs():
        store.put(key, value)
    store.reset_measurements()
    tracer = Tracer(sample_rate=sample, seed=seed)
    processor = KVProcessor(sim, store, tracer=tracer)
    client = KVClient(sim, processor, batch_size=16)
    generator = YCSBGenerator(
        keyspace, WorkloadSpec(put_ratio=0.5, seed=seed)
    )
    client.run(generator.operations(ops))
    return processor, client, tracer


class TestTraceDeterminism:
    def test_two_seeded_runs_byte_identical(self):
        __, __, first = _traced_run(seed=7)
        __, __, second = _traced_run(seed=7)
        assert first.dumps() == second.dumps()
        assert first.digest() == second.digest()
        assert len(first) > 0

    def test_different_seeds_diverge(self):
        __, __, first = _traced_run(seed=7)
        __, __, second = _traced_run(seed=8)
        assert first.digest() != second.digest()

    def test_spans_are_time_ordered_per_index(self):
        __, __, tracer = _traced_run(seed=3)
        indices = [span.index for span in tracer.spans]
        assert indices == list(range(len(tracer)))
        timed = [s.at_ns for s in tracer.spans if s.at_ns != UNTIMED]
        assert timed == sorted(timed)

    def test_full_pipeline_stages_present(self):
        __, __, tracer = _traced_run(seed=5)
        stages = {span.stage for span in tracer.spans}
        for expected in (
            "ingress", "decode", "pipeline.start", "pipeline.done",
            "mem.route", "complete", "eth.rx", "eth.tx",
            "client.batch.send", "client.batch.done",
        ):
            assert expected in stages, f"missing stage {expected}"
        # At least one execute/queue decision happened.
        assert stages & {"station.execute", "station.queued"}


class TestTraceSampling:
    def test_rate_zero_traces_no_ops(self):
        __, __, tracer = _traced_run(seed=2, sample=0.0)
        assert len(tracer) == 0

    def test_rate_zero_digest_is_stable_and_empty(self):
        # An entirely unsampled run still has a well-defined digest (of
        # the empty log) and it is identical across runs and seeds.
        __, __, first = _traced_run(seed=2, sample=0.0)
        __, __, second = _traced_run(seed=9, sample=0.0)
        assert first.dumps() == ""
        assert first.digest() == second.digest()
        assert first.digest() == Tracer(sample_rate=0.0).digest()

    def test_sampled_sets_nest_as_rate_rises(self):
        # Raising the rate only ever adds operations: the hash draw per
        # seq is fixed, so sampled(0.2) <= sampled(0.5) <= sampled(0.8).
        sets = {}
        for rate in (0.2, 0.5, 0.8):
            tracer = Tracer(sample_rate=rate, seed=7)
            sets[rate] = {s for s in range(2000) if tracer.sampled(s)}
        assert sets[0.2] < sets[0.5] < sets[0.8]
        for rate, seqs in sets.items():
            assert abs(len(seqs) / 2000 - rate) < 0.05

    def test_rate_one_traces_every_op(self):
        __, __, tracer = _traced_run(seed=2, ops=60, sample=1.0)
        completed = {
            span.seq for span in tracer.spans if span.stage == "complete"
        }
        assert completed == set(range(60))

    def test_partial_rate_subset_of_full(self):
        __, __, full = _traced_run(seed=2, sample=1.0)
        __, __, part = _traced_run(seed=2, sample=0.4)
        full_seqs = {s.seq for s in full.spans}
        part_seqs = {s.seq for s in part.spans}
        assert part_seqs <= full_seqs
        assert 0 < len(part.spans) < len(full.spans)
        # Sampled ops carry their complete stage sequence, not fragments.
        for seq in part_seqs - {-1}:
            assert [s.stage for s in part.spans if s.seq == seq] == [
                s.stage for s in full.spans if s.seq == seq
            ]


class TestProcessorRegistry:
    def test_register_metrics_covers_every_layer(self):
        processor, client, __ = _traced_run(seed=11)
        registry = processor.register_metrics()
        client.register_metrics(registry)
        flat = registry.collect()
        prefixes = {name.split(".")[0] for name in flat}
        for layer in (
            "processor", "station", "pcie", "mem", "dram", "eth", "client",
        ):
            assert layer in prefixes, f"missing layer {layer}"
        assert flat["eth.rx_packets"] > 0
        assert flat["processor.completed_ops"] > 0
        assert "trace" in prefixes  # tracer was attached

    def test_exports_parse(self):
        processor, __, __ = _traced_run(seed=11)
        registry = processor.register_metrics()
        data = json.loads(registry.to_json())
        assert data
        text = registry.to_prometheus()
        assert text.startswith("# TYPE kvdirect_")
        assert text.endswith("\n")

    def test_registering_twice_on_same_registry_fails(self):
        processor, __, __ = _traced_run(seed=11)
        registry = processor.register_metrics()
        with pytest.raises(ConfigurationError, match="already registered"):
            processor.register_metrics(registry)
