"""Unit tests for the out-of-order execution engine (section 3.3.3)."""

import struct

import pytest

from repro.core.ooo import Admission, ReservationStation
from repro.core.operations import KVOperation, OpType
from repro.core.vector import FETCH_ADD, FunctionRegistry, apply_operation
from repro.errors import ConfigurationError, SimulationError


def q(*values):
    return struct.pack("<%dq" % len(values), *values)


def make_station(**kwargs):
    registry = FunctionRegistry()
    executor = lambda op, current: apply_operation(op, current, registry)
    return ReservationStation(executor, **kwargs)


class TestAdmission:
    def test_first_op_executes(self):
        station = make_station()
        assert station.admit(KVOperation.get(b"a")) is Admission.EXECUTE
        assert station.inflight == 1

    def test_same_key_queues(self):
        station = make_station()
        station.admit(KVOperation.get(b"a"))
        assert station.admit(KVOperation.get(b"a")) is Admission.QUEUED
        assert station.inflight == 2

    def test_different_keys_execute_concurrently(self):
        station = make_station()
        assert station.admit(KVOperation.get(b"a")) is Admission.EXECUTE
        assert station.admit(KVOperation.get(b"b")) is Admission.EXECUTE

    def test_hash_collision_conservatively_queues(self):
        station = make_station(num_slots=1)  # everything collides
        station.admit(KVOperation.get(b"a"))
        assert station.admit(KVOperation.get(b"b")) is Admission.QUEUED

    def test_capacity_enforced(self):
        station = make_station(capacity=2)
        station.admit(KVOperation.get(b"a"))
        station.admit(KVOperation.get(b"b"))
        assert not station.has_room
        with pytest.raises(SimulationError):
            station.admit(KVOperation.get(b"c"))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            make_station(num_slots=0)
        with pytest.raises(ConfigurationError):
            make_station(capacity=0)


class TestCompletion:
    def test_plain_completion_frees_slot(self):
        station = make_station()
        op = KVOperation.get(b"a")
        station.admit(op)
        completion = station.complete(op, b"value")
        assert completion.responses == []
        assert completion.writeback is None
        assert station.inflight == 0
        assert station.busy_slots() == 0

    def test_get_after_put_forwards_updated_value(self):
        """A GET following a PUT on the same key returns the new value
        without a second memory access."""
        station = make_station()
        put = KVOperation.put(b"a", b"new")
        get = KVOperation.get(b"a")
        station.admit(put)
        station.admit(get)
        completion = station.complete(put, b"new")
        assert len(completion.responses) == 1
        fwd_op, fwd_result = completion.responses[0]
        assert fwd_op is get
        assert fwd_result.value == b"new"
        assert completion.forwarded == 1
        assert completion.writeback is None  # GET does not dirty the value

    def test_forwarded_put_produces_writeback(self):
        station = make_station()
        first = KVOperation.get(b"a")
        second = KVOperation.put(b"a", b"v2")
        station.admit(first)
        station.admit(second)
        completion = station.complete(first, b"v1")
        assert completion.forwarded == 1
        assert completion.writeback is not None
        assert completion.writeback.op is OpType.PUT
        assert completion.writeback.value == b"v2"
        # Write-back completion releases the slot.
        done = station.complete(completion.writeback, b"v2")
        assert done.writeback is None
        assert station.busy_slots() == 0

    def test_atomic_chain_executes_in_order(self):
        """Many same-key atomics resolve in one completion sweep."""
        station = make_station()
        ops = [
            KVOperation.update(b"ctr", FETCH_ADD, q(1), seq=i)
            for i in range(10)
        ]
        assert station.admit(ops[0]) is Admission.EXECUTE
        for op in ops[1:]:
            assert station.admit(op) is Admission.QUEUED
        # Main pipeline executed ops[0]: counter went 0 -> 1.
        completion = station.complete(ops[0], q(1))
        assert completion.forwarded == 9
        returned = [
            struct.unpack("<q", r.value)[0] for __, r in completion.responses
        ]
        assert returned == list(range(1, 10))  # each atomic returns the old value
        assert completion.writeback.value == q(10)

    def test_delete_forwarding_produces_delete_writeback(self):
        station = make_station()
        get = KVOperation.get(b"a")
        delete = KVOperation.delete(b"a")
        station.admit(get)
        station.admit(delete)
        completion = station.complete(get, b"value")
        assert completion.writeback is not None
        assert completion.writeback.op is OpType.DELETE

    def test_get_after_delete_forwards_missing(self):
        station = make_station()
        delete = KVOperation.delete(b"a")
        get = KVOperation.get(b"a")
        station.admit(delete)
        station.admit(get)
        completion = station.complete(delete, None)
        __, result = completion.responses[0]
        assert not result.found

    def test_collision_chain_issues_next_key(self):
        station = make_station(num_slots=1)
        first = KVOperation.get(b"a")
        second = KVOperation.get(b"b")
        station.admit(first)
        station.admit(second)
        completion = station.complete(first, b"va")
        assert completion.responses == []  # different key: no forwarding
        assert completion.next_issue is second
        done = station.complete(second, b"vb")
        assert done.next_issue is None

    def test_popular_key_skips_colliding_op(self):
        """Same-hash different-key ops do not block same-key forwarding."""
        station = make_station(num_slots=1)
        first = KVOperation.get(b"a")
        blocker = KVOperation.get(b"b")  # collides, different key
        third = KVOperation.get(b"a")
        station.admit(first)
        station.admit(blocker)
        station.admit(third)
        completion = station.complete(first, b"va")
        assert [op for op, __ in completion.responses] == [third]
        assert completion.next_issue is blocker

    def test_unknown_completion_rejected(self):
        station = make_station()
        with pytest.raises(SimulationError):
            station.complete(KVOperation.get(b"ghost"), None)

    def test_occupancy_returns_to_zero(self):
        station = make_station()
        ops = [KVOperation.update(b"k", FETCH_ADD, q(1)) for __ in range(20)]
        station.admit(ops[0])
        for op in ops[1:]:
            station.admit(op)
        completion = station.complete(ops[0], q(1))
        while completion.writeback or completion.next_issue:
            nxt = completion.writeback or completion.next_issue
            completion = station.complete(nxt, nxt.value if nxt.op is OpType.PUT else None)
        assert station.inflight == 0
        assert station.busy_slots() == 0


class TestStallMode:
    """forwarding=False reproduces the paper's 'without OoO' baseline."""

    def test_no_forwarding(self):
        station = make_station(forwarding=False)
        put = KVOperation.put(b"a", b"new")
        get = KVOperation.get(b"a")
        station.admit(put)
        station.admit(get)
        completion = station.complete(put, b"new")
        assert completion.responses == []
        assert completion.forwarded == 0
        # The dependent GET must go through the main pipeline itself.
        assert completion.next_issue is get

    def test_serial_chain(self):
        station = make_station(forwarding=False)
        ops = [KVOperation.update(b"k", FETCH_ADD, q(1)) for __ in range(5)]
        for op in ops:
            station.admit(op)
        issued = 1
        completion = station.complete(ops[0], q(1))
        while completion.next_issue is not None:
            issued += 1
            completion = station.complete(completion.next_issue, q(issued))
        assert issued == 5  # every op took its own pipeline pass


class TestAccounting:
    def test_counters(self):
        station = make_station()
        put = KVOperation.put(b"a", b"v")
        get = KVOperation.get(b"a")
        station.admit(put)
        station.admit(get)
        station.complete(put, b"v")
        snap = station.snapshot()
        assert snap["issued"] == 1
        assert snap["queued"] == 1
        assert snap["forwarded"] == 1

    def test_max_chain_tracked(self):
        station = make_station()
        station.admit(KVOperation.get(b"a"))
        for __ in range(7):
            station.admit(KVOperation.get(b"a"))
        assert station.counters["max_chain"] == 7

    def test_max_chain_is_a_watermark(self):
        """Regression: admit used to poke Counter._counts directly; the
        record_max API must keep the high watermark once chains drain."""
        station = make_station()
        ops = [KVOperation.get(b"a") for __ in range(5)]
        for op in ops:
            station.admit(op)
        assert station.counters["max_chain"] == 4
        # Drain the chain, then build a shorter one: watermark holds.
        station.complete(ops[0], b"v")
        station.admit(KVOperation.get(b"b"))
        station.admit(KVOperation.get(b"b"))
        assert station.counters["max_chain"] == 4
