"""Randomized stress tests for the reservation station.

A driver admits and completes operations in arbitrary (but valid)
interleavings and checks global invariants: occupancy conservation, FIFO
per-key ordering of results, and exact agreement with a serial oracle.

The timed variants push the same invariants through the full
:class:`~repro.core.processor.KVProcessor` with randomized PCIe latencies
and injected DMA faults: per-key order must survive arbitrary
memory-timing perturbation, and a failed op must forward the key's *true*
value to its dependents (no stale forwarding).
"""

import random
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ooo import Admission, ReservationStation
from repro.core.operations import KVOperation, OpType
from repro.core.processor import KVProcessor
from repro.core.store import KVDirectStore
from repro.core.vector import FETCH_ADD, FunctionRegistry, apply_operation
from repro.errors import FaultInjected
from repro.faults import FaultPlan
from repro.sim import Simulator


def q(*values):
    return struct.pack("<%dq" % len(values), *values)


class StationDriver:
    """Executes a station against an in-memory 'main pipeline'."""

    def __init__(self, forwarding=True, num_slots=8, capacity=64):
        self.registry = FunctionRegistry()
        self.station = ReservationStation(
            lambda op, cur: apply_operation(op, cur, self.registry),
            num_slots=num_slots,
            capacity=capacity,
            forwarding=forwarding,
        )
        self.memory = {}  # the "host memory": key -> value
        self.pipeline = []  # ops currently in the main pipeline
        self.responses = {}  # seq -> KVResult

    def submit(self, op):
        if self.station.admit(op) is Admission.EXECUTE:
            self.pipeline.append(op)

    def step(self, rng):
        """Complete one randomly chosen in-flight pipeline op."""
        if not self.pipeline:
            return False
        op = self.pipeline.pop(rng.randrange(len(self.pipeline)))
        new_value, result = apply_operation(
            op, self.memory.get(op.key), self.registry
        )
        if new_value is None:
            self.memory.pop(op.key, None)
        else:
            self.memory[op.key] = new_value
        if op.seq >= 0:
            self.responses[op.seq] = result
        completion = self.station.complete(op, new_value)
        for fwd_op, fwd_result in completion.responses:
            self.responses[fwd_op.seq] = fwd_result
        if completion.writeback is not None:
            self.pipeline.append(completion.writeback)
        if completion.next_issue is not None:
            self.pipeline.append(completion.next_issue)
        return True

    def drain(self, rng):
        while self.step(rng):
            pass


def serial_oracle(ops):
    registry = FunctionRegistry()
    state, results = {}, {}
    for op in ops:
        new_value, result = apply_operation(op, state.get(op.key), registry)
        if new_value is None:
            state.pop(op.key, None)
        else:
            state[op.key] = new_value
        results[op.seq] = result
    return state, results


def make_ops(spec):
    ops = []
    for seq, (kind, key_index, operand) in enumerate(spec):
        key = b"k%d" % key_index
        if kind == 0:
            ops.append(KVOperation.get(key, seq=seq))
        elif kind == 1:
            ops.append(KVOperation.put(key, q(operand), seq=seq))
        elif kind == 2:
            ops.append(KVOperation.delete(key, seq=seq))
        else:
            ops.append(KVOperation.update(key, FETCH_ADD, q(operand), seq=seq))
    return ops


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(-9, 9)),
        min_size=1,
        max_size=60,
    ),
    st.integers(0, 2**16),
    st.booleans(),
)
@settings(
    max_examples=80,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
def test_random_interleavings_match_serial_oracle(spec, seed, forwarding):
    """Under ANY completion order the station linearizes per key."""
    rng = random.Random(seed)
    driver = StationDriver(forwarding=forwarding, capacity=len(spec) + 1)
    ops = make_ops(spec)
    for op in ops:
        driver.submit(op)
        if rng.random() < 0.4:
            driver.step(rng)
    driver.drain(rng)

    expected_state, expected_results = serial_oracle(ops)
    assert driver.memory == expected_state
    assert set(driver.responses) == set(expected_results)
    for seq, want in expected_results.items():
        got = driver.responses[seq]
        assert got.ok == want.ok, f"seq {seq}"
        assert got.value == want.value, f"seq {seq}"
    assert driver.station.inflight == 0
    assert driver.station.busy_slots() == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(-9, 9)),
        min_size=1,
        max_size=60,
    ),
    st.integers(0, 2**16),
)
@settings(
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
def test_tiny_station_still_correct(spec, seed):
    """One hash slot (every key collides) must still be correct."""
    rng = random.Random(seed)
    driver = StationDriver(num_slots=1, capacity=len(spec) + 1)
    ops = make_ops(spec)
    for op in ops:
        driver.submit(op)
    driver.drain(rng)
    expected_state, __ = serial_oracle(ops)
    assert driver.memory == expected_state


def test_forwarding_actually_forwards():
    """Sanity: the stress driver exercises the forwarding path."""
    driver = StationDriver()
    ops = [KVOperation.put(b"k0", q(0), seq=0)] + [
        KVOperation.update(b"k0", FETCH_ADD, q(1), seq=i)
        for i in range(1, 21)
    ]
    for op in ops:
        driver.submit(op)
    driver.drain(random.Random(0))
    assert driver.station.counters["forwarded"] > 0
    assert driver.memory[b"k0"] == q(20)


class TestTimedPipelineUnderFaults:
    """The full timed pipeline with randomized PCIe latencies and injected
    DMA faults must still linearize per key."""

    def _hot_key_ops(self, rng, count=300, keys=3):
        ops = []
        for seq in range(count):
            key = b"hot%d" % rng.randrange(keys)
            roll = rng.random()
            if roll < 0.20:
                ops.append(KVOperation.put(key, q(rng.randrange(100)),
                                           seq=seq))
            elif roll < 0.30:
                ops.append(KVOperation.get(key, seq=seq))
            elif roll < 0.35:
                ops.append(KVOperation.delete(key, seq=seq))
            else:
                ops.append(KVOperation.update(
                    key, FETCH_ADD, q(rng.randrange(1, 10)), seq=seq
                ))
        return ops

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_per_key_order_survives_dma_faults(self, seed):
        """Hot keys + delay spikes + retried TLP drops: results must match
        the serial oracle exactly (per-key order preserved, no stale
        forwarding), and the station must fully drain."""
        plan = FaultPlan(
            dma_delay_prob=0.3, dma_delay_ns=5000.0,
            dma_drop_prob=0.02, dma_max_retries=1000,
            dma_retry_timeout_ns=500.0,
        )
        # The config seed also drives the per-link PCIe latency
        # distributions, so each case randomizes memory timing as well.
        store = KVDirectStore.create(
            memory_size=4 << 20, fault_plan=plan, seed=seed
        )
        sim = Simulator()
        processor = KVProcessor(sim, store)
        ops = self._hot_key_ops(random.Random(seed))
        events = {op.seq: processor.submit(op) for op in ops}
        sim.run()

        assert store.injector.fired > 0
        expected_state, expected_results = serial_oracle(ops)
        for seq, want in expected_results.items():
            got = events[seq].value
            assert got.ok == want.ok, f"seq {seq}"
            assert got.value == want.value, f"seq {seq}"
        assert dict(store.items()) == expected_state
        assert processor.station.inflight == 0
        assert processor.station.busy_slots() == 0
        # With three hot keys the forwarding path was genuinely exercised.
        assert processor.counters["forwarded"] > 0

    def test_failed_op_forwards_true_value_to_dependents(self):
        """A dependent parked behind an op that dies mid-replay must be
        forwarded the key's actual current value, not stale ``None``.

        The PUT applies functionally before its timing replay exhausts the
        DMA retry budget, so the dependent GET must observe the new value.
        """
        plan = FaultPlan(
            dma_drop_prob=1.0, dma_max_retries=5,
            dma_retry_timeout_ns=1000.0,
        )
        store = KVDirectStore.create(
            memory_size=4 << 20, fault_plan=plan, use_nic_dram=False
        )
        sim = Simulator()
        processor = KVProcessor(sim, store)
        put = KVOperation.put(b"k", q(99), seq=0)
        get = KVOperation.get(b"k", seq=1)
        put_event = processor.submit(put)
        get_event = processor.submit(get)
        sim.run()

        assert isinstance(put_event.exception, FaultInjected)
        assert processor.counters["fault_failed_replays"] == 1
        assert get_event.ok
        result = get_event.value
        assert result.ok
        assert result.value == q(99)
        # The GET never touched memory itself: it was forwarded.
        assert processor.counters["forwarded"] >= 1
        assert processor.station.inflight == 0
