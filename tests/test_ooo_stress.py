"""Randomized stress tests for the reservation station.

A driver admits and completes operations in arbitrary (but valid)
interleavings and checks global invariants: occupancy conservation, FIFO
per-key ordering of results, and exact agreement with a serial oracle.
"""

import random
import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.ooo import Admission, ReservationStation
from repro.core.operations import KVOperation, OpType
from repro.core.vector import FETCH_ADD, FunctionRegistry, apply_operation


def q(*values):
    return struct.pack("<%dq" % len(values), *values)


class StationDriver:
    """Executes a station against an in-memory 'main pipeline'."""

    def __init__(self, forwarding=True, num_slots=8, capacity=64):
        self.registry = FunctionRegistry()
        self.station = ReservationStation(
            lambda op, cur: apply_operation(op, cur, self.registry),
            num_slots=num_slots,
            capacity=capacity,
            forwarding=forwarding,
        )
        self.memory = {}  # the "host memory": key -> value
        self.pipeline = []  # ops currently in the main pipeline
        self.responses = {}  # seq -> KVResult

    def submit(self, op):
        if self.station.admit(op) is Admission.EXECUTE:
            self.pipeline.append(op)

    def step(self, rng):
        """Complete one randomly chosen in-flight pipeline op."""
        if not self.pipeline:
            return False
        op = self.pipeline.pop(rng.randrange(len(self.pipeline)))
        new_value, result = apply_operation(
            op, self.memory.get(op.key), self.registry
        )
        if new_value is None:
            self.memory.pop(op.key, None)
        else:
            self.memory[op.key] = new_value
        if op.seq >= 0:
            self.responses[op.seq] = result
        completion = self.station.complete(op, new_value)
        for fwd_op, fwd_result in completion.responses:
            self.responses[fwd_op.seq] = fwd_result
        if completion.writeback is not None:
            self.pipeline.append(completion.writeback)
        if completion.next_issue is not None:
            self.pipeline.append(completion.next_issue)
        return True

    def drain(self, rng):
        while self.step(rng):
            pass


def serial_oracle(ops):
    registry = FunctionRegistry()
    state, results = {}, {}
    for op in ops:
        new_value, result = apply_operation(op, state.get(op.key), registry)
        if new_value is None:
            state.pop(op.key, None)
        else:
            state[op.key] = new_value
        results[op.seq] = result
    return state, results


def make_ops(spec):
    ops = []
    for seq, (kind, key_index, operand) in enumerate(spec):
        key = b"k%d" % key_index
        if kind == 0:
            ops.append(KVOperation.get(key, seq=seq))
        elif kind == 1:
            ops.append(KVOperation.put(key, q(operand), seq=seq))
        elif kind == 2:
            ops.append(KVOperation.delete(key, seq=seq))
        else:
            ops.append(KVOperation.update(key, FETCH_ADD, q(operand), seq=seq))
    return ops


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(-9, 9)),
        min_size=1,
        max_size=60,
    ),
    st.integers(0, 2**16),
    st.booleans(),
)
@settings(
    max_examples=80,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
def test_random_interleavings_match_serial_oracle(spec, seed, forwarding):
    """Under ANY completion order the station linearizes per key."""
    rng = random.Random(seed)
    driver = StationDriver(forwarding=forwarding, capacity=len(spec) + 1)
    ops = make_ops(spec)
    for op in ops:
        driver.submit(op)
        if rng.random() < 0.4:
            driver.step(rng)
    driver.drain(rng)

    expected_state, expected_results = serial_oracle(ops)
    assert driver.memory == expected_state
    assert set(driver.responses) == set(expected_results)
    for seq, want in expected_results.items():
        got = driver.responses[seq]
        assert got.ok == want.ok, f"seq {seq}"
        assert got.value == want.value, f"seq {seq}"
    assert driver.station.inflight == 0
    assert driver.station.busy_slots() == 0


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(-9, 9)),
        min_size=1,
        max_size=60,
    ),
    st.integers(0, 2**16),
)
@settings(
    max_examples=40,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
def test_tiny_station_still_correct(spec, seed):
    """One hash slot (every key collides) must still be correct."""
    rng = random.Random(seed)
    driver = StationDriver(num_slots=1, capacity=len(spec) + 1)
    ops = make_ops(spec)
    for op in ops:
        driver.submit(op)
    driver.drain(rng)
    expected_state, __ = serial_oracle(ops)
    assert driver.memory == expected_state


def test_forwarding_actually_forwards():
    """Sanity: the stress driver exercises the forwarding path."""
    driver = StationDriver()
    ops = [KVOperation.put(b"k0", q(0), seq=0)] + [
        KVOperation.update(b"k0", FETCH_ADD, q(1), seq=i)
        for i in range(1, 21)
    ]
    for op in ops:
        driver.submit(op)
    driver.drain(random.Random(0))
    assert driver.station.counters["forwarded"] > 0
    assert driver.memory[b"k0"] == q(20)
