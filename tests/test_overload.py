"""Overload control: admission queue, shed policies, deadlines, curves.

Covers the bounded ingress queue unit-by-unit (each shed policy's victim
choice), the wire-format deadline field, the processor's lazy deadline
checks at each stage boundary, and the end-to-end graceful-degradation
acceptance criterion: at 3x offered load a shedding server holds goodput
near peak with bounded p99, while the legacy blocking ingress lets
latency blow up with the backlog.
"""

import struct

import pytest

from repro.chaos import probe_capacity, run_point
from repro.core.admission import (
    SHED_POLICIES,
    IngressQueue,
    OverloadPolicy,
    shed_class,
)
from repro.core.operations import KVOperation
from repro.core.processor import KVProcessor
from repro.core.store import KVDirectStore
from repro.core.vector import FETCH_ADD
from repro.errors import (
    ConfigurationError,
    DeadlineExceeded,
    ProtocolError,
    ServerBusy,
)
from repro.network.batching import (
    decode_batch,
    decode_batch_with_deadline,
    encode_batch,
)
from repro.obs import MetricsRegistry
from repro.sim import Simulator
from repro.sim.resources import TokenPool


def q(value):
    return struct.pack("<q", value)


class TestOverloadPolicy:
    def test_defaults_are_valid(self):
        policy = OverloadPolicy()
        assert policy.queue_depth == 64
        assert policy.shed_policy in SHED_POLICIES

    @pytest.mark.parametrize("depth", [0, -1])
    def test_rejects_bad_depth(self, depth):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(queue_depth=depth)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError, match="unknown shed policy"):
            OverloadPolicy(shed_policy="coin-flip")

    def test_with_overrides(self):
        policy = OverloadPolicy().with_overrides(shed_policy="drop-oldest")
        assert policy.shed_policy == "drop-oldest"

    def test_config_rejects_non_policy(self):
        with pytest.raises(ConfigurationError, match="OverloadPolicy"):
            KVDirectStore.create(memory_size=4 << 20, overload="yes")


class TestShedClass:
    def test_vector_ops_shed_first(self):
        vector = KVOperation.update(b"k", FETCH_ADD, q(1))
        put = KVOperation.put(b"k", b"v")
        delete = KVOperation.delete(b"k")
        get = KVOperation.get(b"k")
        assert shed_class(vector) < shed_class(put) == shed_class(delete)
        assert shed_class(put) < shed_class(get)


def _queue(policy="reject-new", depth=2, tokens=1):
    sim = Simulator()
    pool = TokenPool(sim, tokens, name="t")
    queue = IngressQueue(
        sim, pool, OverloadPolicy(queue_depth=depth, shed_policy=policy)
    )
    return sim, pool, queue


class TestIngressQueue:
    def test_direct_admit_when_idle(self):
        __, pool, queue = _queue()
        event = queue.submit(KVOperation.get(b"a"))
        assert event.triggered and event.ok and event.value == 0.0
        assert queue.counters["admitted_direct"] == 1
        assert queue.depth == 0
        assert not pool.try_acquire()  # the token went to the op

    def test_enqueues_when_tokens_busy(self):
        __, __, queue = _queue()
        queue.submit(KVOperation.get(b"a"))
        waiting = queue.submit(KVOperation.get(b"b"))
        assert not waiting.triggered
        assert queue.depth == 1
        assert queue.counters["enqueued"] == 1

    def test_release_grants_fifo_with_wait_time(self):
        sim, __, queue = _queue()
        queue.submit(KVOperation.get(b"a"))
        first = queue.submit(KVOperation.get(b"b"))
        second = queue.submit(KVOperation.get(b"c"))
        sim._now = 500.0  # advance the clock without running processes
        queue.release()
        assert first.triggered and first.ok and first.value == 500.0
        assert not second.triggered
        assert queue.wait_ns.count == 2  # the direct admit recorded 0.0
        assert queue.wait_ns.max() == 500.0
        assert queue.counters["admitted_queued"] == 1

    def test_reject_new_sheds_the_arrival(self):
        __, __, queue = _queue(policy="reject-new", depth=1)
        queue.submit(KVOperation.get(b"a"))
        queued = queue.submit(KVOperation.get(b"b"))
        shed = queue.submit(KVOperation.get(b"c"))
        assert not queued.triggered
        assert shed.triggered and not shed.ok
        assert isinstance(shed.exception, ServerBusy)
        assert shed.exception.policy == "reject-new"
        assert shed.exception.reason == "arriving"
        assert queue.depth == 1
        assert queue.shed_total == 1

    def test_drop_oldest_sheds_the_head(self):
        __, __, queue = _queue(policy="drop-oldest", depth=1)
        queue.submit(KVOperation.get(b"a"))
        oldest = queue.submit(KVOperation.get(b"b"))
        arrival = queue.submit(KVOperation.get(b"c"))
        assert oldest.triggered and not oldest.ok
        assert oldest.exception.reason == "oldest"
        assert not arrival.triggered  # took the shed op's place
        assert queue.depth == 1

    def test_by_op_class_sheds_writes_before_reads(self):
        __, __, queue = _queue(policy="by-op-class", depth=2)
        queue.submit(KVOperation.get(b"a"))
        write = queue.submit(KVOperation.put(b"b", b"v"))
        read = queue.submit(KVOperation.get(b"c"))
        arrival = queue.submit(KVOperation.get(b"d"))
        assert write.triggered and not write.ok
        assert write.exception.reason == "write"
        assert not read.triggered and not arrival.triggered
        assert queue.counters["shed_class_write"] == 1

    def test_by_op_class_sheds_vector_ops_first(self):
        __, __, queue = _queue(policy="by-op-class", depth=2)
        queue.submit(KVOperation.get(b"a"))
        write = queue.submit(KVOperation.put(b"b", b"v"))
        vector = queue.submit(KVOperation.update(b"c", FETCH_ADD, q(1)))
        queue.submit(KVOperation.get(b"d"))
        assert vector.triggered and not vector.ok
        assert vector.exception.reason == "vector"
        assert not write.triggered

    def test_by_op_class_tie_sheds_oldest(self):
        """All reads: the oldest queued read goes, not the arrival."""
        __, __, queue = _queue(policy="by-op-class", depth=1)
        queue.submit(KVOperation.get(b"a"))
        oldest = queue.submit(KVOperation.get(b"b"))
        arrival = queue.submit(KVOperation.get(b"c"))
        assert oldest.triggered and not oldest.ok
        assert not arrival.triggered


class TestWireDeadline:
    OPS = [
        KVOperation.put(b"key1", b"value", seq=0),
        KVOperation.get(b"key2", seq=1),
    ]

    def test_round_trip(self):
        payload = encode_batch(self.OPS, deadline_ns=123456.0)
        ops, deadline = decode_batch_with_deadline(payload)
        assert deadline == 123456.0
        assert [op.key for op in ops] == [op.key for op in self.OPS]

    def test_absent_by_default(self):
        payload = encode_batch(self.OPS)
        __, deadline = decode_batch_with_deadline(payload)
        assert deadline is None

    def test_no_size_change_without_deadline(self):
        plain = encode_batch(self.OPS)
        stamped = encode_batch(self.OPS, deadline_ns=1.0)
        assert len(stamped) == len(plain) + 8

    def test_checksum_covers_the_deadline(self):
        payload = encode_batch(self.OPS, checksum=True, deadline_ns=42.0)
        ops, deadline = decode_batch_with_deadline(payload, checksum=True)
        assert deadline == 42.0
        assert len(ops) == 2

    def test_decode_batch_ignores_deadline(self):
        payload = encode_batch(self.OPS, deadline_ns=42.0)
        assert len(decode_batch(payload)) == 2

    @pytest.mark.parametrize("bad", [-1.0, 2.0 ** 64])
    def test_rejects_unencodable_deadlines(self, bad):
        with pytest.raises(ProtocolError):
            encode_batch(self.OPS, deadline_ns=bad)


def _settle_all(sim, events):
    """Run until every event settles; returns (ok, shed, expired) lists."""
    gate = sim.event()
    remaining = {"n": len(events)}

    def on_settle(event):
        remaining["n"] -= 1
        if remaining["n"] == 0 and not gate.triggered:
            gate.succeed()

    for event in events:
        event.add_callback(on_settle)
    sim.run(gate)
    ok = [e for e in events if e.ok]
    shed = [e for e in events if not e.ok
            and isinstance(e.exception, ServerBusy)]
    expired = [e for e in events if not e.ok
               and isinstance(e.exception, DeadlineExceeded)]
    return ok, shed, expired


class TestProcessorShedding:
    def _processor(self, **overrides):
        sim = Simulator()
        store = KVDirectStore.create(memory_size=4 << 20, **overrides)
        for i in range(64):
            store.put(b"k%03d" % i, b"v" * 8)
        return sim, KVProcessor(sim, store)

    def test_burst_past_queue_depth_is_shed(self):
        sim, processor = self._processor(
            max_inflight=2, overload=OverloadPolicy(queue_depth=2)
        )
        events = [
            processor.submit(KVOperation.get(b"k%03d" % i, seq=i))
            for i in range(16)
        ]
        ok, shed, expired = _settle_all(sim, events)
        assert len(shed) > 0 and len(expired) == 0
        assert len(ok) + len(shed) == 16
        # Shed ops are NOT counted as completed (goodput accounting).
        assert processor.completed == len(ok)
        assert processor.counters["shed_ops"] == len(shed)
        assert processor.admission.shed_total == len(shed)

    def test_no_shedding_without_policy(self):
        sim, processor = self._processor(max_inflight=2)
        events = [
            processor.submit(KVOperation.get(b"k%03d" % i, seq=i))
            for i in range(16)
        ]
        ok, shed, __ = _settle_all(sim, events)
        assert len(ok) == 16 and not shed
        assert processor.admission is None

    def test_full_stalls_counted_on_both_paths(self):
        for overload in (None, OverloadPolicy(queue_depth=16)):
            sim, processor = self._processor(
                max_inflight=1, overload=overload
            )
            events = [
                processor.submit(KVOperation.get(b"k%03d" % i, seq=i))
                for i in range(4)
            ]
            _settle_all(sim, events)
            assert processor.station.counters["full_stalls"] >= 1
            assert processor.stall_times.count >= 1

    def test_ingress_metrics_registered_only_with_policy(self):
        __, processor = self._processor(overload=OverloadPolicy())
        registry = processor.register_metrics(MetricsRegistry())
        assert "ingress" in registry
        assert "ingress.wait_ns" in registry
        assert "ingress.depth" in registry
        __, plain = self._processor()
        assert "ingress" not in plain.register_metrics(MetricsRegistry())


class TestProcessorDeadlines:
    def _processor(self, **overrides):
        sim = Simulator()
        store = KVDirectStore.create(memory_size=4 << 20, **overrides)
        store.put(b"key", b"value000")
        return sim, store, KVProcessor(sim, store)

    def test_expires_at_decode(self):
        sim, __, processor = self._processor()
        event = processor.submit(
            KVOperation.get(b"key", seq=0), deadline_ns=1.0
        )
        _settle_all(sim, [event])
        assert not event.ok
        assert isinstance(event.exception, DeadlineExceeded)
        assert event.exception.stage == "decode"
        assert processor.deadline_counters["decode"] == 1
        assert processor.completed == 0

    def test_expires_at_admission_while_stalled(self):
        sim, __, processor = self._processor(max_inflight=1)
        slow = processor.submit(KVOperation.get(b"key", seq=0))
        # The second op decodes fine but stalls for the only token; its
        # deadline passes during the stall.
        dead = processor.submit(
            KVOperation.get(b"key", seq=1),
            deadline_ns=sim.now + 100.0,
        )
        _settle_all(sim, [slow, dead])
        assert slow.ok
        assert not dead.ok
        assert dead.exception.stage == "admission"
        assert processor.deadline_counters["admission"] == 1

    def test_expires_at_pipeline_start_for_next_issue(self):
        # Stall mode (no forwarding): a queued dependent re-enters the
        # main pipeline via next_issue after its deadline passed.
        sim, store, processor = self._processor(out_of_order=False)
        writer = processor.submit(
            KVOperation.put(b"key", b"value001", seq=0)
        )
        # Budget long enough to clear decode and admission, short enough
        # to expire while queued behind the in-flight PUT (~1 us).
        dead = processor.submit(
            KVOperation.get(b"key", seq=1), deadline_ns=sim.now + 200.0
        )
        _settle_all(sim, [writer, dead])
        assert writer.ok
        assert not dead.ok
        assert dead.exception.stage == "pipeline_start"
        assert processor.deadline_counters["pipeline_start"] == 1
        # The failed GET had no side effects; the PUT landed.
        assert store.get(b"key") == b"value001"

    def test_generous_deadline_never_fires(self):
        sim, __, processor = self._processor()
        event = processor.submit(
            KVOperation.get(b"key", seq=0), deadline_ns=1e12
        )
        sim.run(event)
        assert event.ok
        assert processor.deadline_counters.snapshot() == {}

    def test_deadline_metrics_registered(self):
        __, __, processor = self._processor()
        registry = processor.register_metrics(MetricsRegistry())
        assert "processor.deadline" in registry
        assert "station.stall_time_ns" in registry


class TestGracefulDegradation:
    """The PR's acceptance criterion, at test-suite scale."""

    def test_shedding_holds_goodput_while_blocking_blows_up(self):
        capacity = probe_capacity(num_ops=1000)
        shed1 = run_point(1.0, True, capacity, num_ops=3000)
        shed3 = run_point(3.0, True, capacity, num_ops=3000)
        noshed3 = run_point(3.0, False, capacity, num_ops=3000)
        peak = max(shed1["goodput_mops"], shed3["goodput_mops"])
        # Goodput >= 80 % of peak at 3x offered load, with real shedding
        # and bounded retries (the excess is NACKed, not queued).
        assert shed3["goodput_mops"] >= 0.8 * peak
        assert shed3["shed_rate"] > 0.1
        assert shed3["completed"] + shed3["shed"] == shed3["submitted"]
        # Without shedding nothing is dropped - the backlog is unbounded
        # and p99 blows up relative to the bounded-queue run.
        assert noshed3["shed"] == 0
        assert (
            noshed3["latency_p99_ns"] > 1.5 * shed3["latency_p99_ns"]
        )
