"""The paper-claims registry: every number quoted from the paper text,
pinned to the constants module that parameterizes the simulation.

If a constant drifts, the figure benchmarks may still pass on relative
assertions - this file is what fails loudly.
"""

import pytest

from repro import constants
from repro.pcie.tlp import effective_bandwidth, effective_op_rate


class TestSection23ProgrammableNIC:
    def test_clock(self):
        """'With 180 MHz clock frequency, our design can process KV
        operations at 180 M op/s' (section 4)."""
        assert constants.KV_CLOCK_HZ == 180e6

    def test_nic_dram(self):
        """'4 GiB size and 12.8 GB/s throughput' (section 3.3.4)."""
        assert constants.NIC_DRAM_SIZE == 4 * 1024**3
        assert constants.NIC_DRAM_BANDWIDTH == 12.8e9


class TestSection24PCIe:
    def test_link_parameters(self):
        """'PCIe is a packet switched network with 500 ns round-trip
        latency and 7.87 GB/s theoretical bandwidth per Gen3 x8'."""
        assert constants.PCIE_FABRIC_RTT_NS == 500
        assert constants.PCIE_GEN3_X8_BANDWIDTH == 7.87e9

    def test_latency_components(self):
        """'cached PCIe DMA read latency is 800 ns ... additional 250 ns
        average latency' for random reads."""
        assert constants.PCIE_DMA_READ_CACHED_NS == 800
        assert (
            constants.PCIE_DMA_READ_RANDOM_SPREAD_NS / 2
            == constants.PCIE_DMA_READ_RANDOM_EXTRA_NS
        )

    def test_tlp_overhead_and_derived_throughput(self):
        """'26-byte header and padding ... theoretical throughput is
        therefore 5.6 GB/s, or 87 Mops'."""
        assert constants.PCIE_TLP_OVERHEAD == 26
        assert effective_bandwidth(
            constants.PCIE_GEN3_X8_BANDWIDTH, 64
        ) == pytest.approx(5.6e9, rel=0.01)
        assert effective_op_rate(
            constants.PCIE_GEN3_X8_BANDWIDTH, 64
        ) == pytest.approx(87e6, rel=0.01)

    def test_saturation_concurrency(self):
        """'92 concurrent DMA requests are needed considering our latency
        of 1050 ns' - reproduced: ceil(rate x latency)."""
        import math

        latency_s = (
            constants.PCIE_DMA_READ_CACHED_NS
            + constants.PCIE_DMA_READ_RANDOM_EXTRA_NS
        ) / 1e9
        rate = effective_op_rate(constants.PCIE_GEN3_X8_BANDWIDTH, 64)
        assert math.ceil(rate * latency_s) == pytest.approx(
            constants.PCIE_CONCURRENCY_FOR_SATURATION, abs=1
        )

    def test_flow_control_credits(self):
        """'88 TLP posted header credits ... 84 TLP non-posted'."""
        assert constants.PCIE_POSTED_CREDITS == 88
        assert constants.PCIE_NONPOSTED_CREDITS == 84

    def test_tag_limit(self):
        """'only support 64 PCIe tags, further limiting our DMA read
        concurrency'."""
        assert constants.PCIE_DMA_TAGS == 64

    def test_network_ceiling(self):
        """'with 40 Gbps network and 64-byte KV pairs, the throughput
        ceiling is 78 Mops with client-side batching'."""
        per_op = 64  # batched: payload only
        ceiling = constants.NETWORK_BANDWIDTH / per_op
        assert ceiling == pytest.approx(78e6, rel=0.01)


class TestSection33Structures:
    def test_bucket_geometry(self):
        """'Each line is a hash bucket containing 10 hash slots, 3 bits of
        slab memory type per hash slot' ... 'bucket size to be 64 bytes'."""
        assert constants.BUCKET_SIZE == 64
        assert constants.SLOTS_PER_BUCKET == 10
        assert constants.SLAB_TYPE_BITS == 3

    def test_slot_arithmetic(self):
        """'the pointer requires 31 bits.  A secondary hash of 9 bits
        gives a 1/512 false positive probability.  Cumulatively, the hash
        slot size is 5 bytes.'"""
        assert constants.POINTER_BITS == 31
        assert constants.SECONDARY_HASH_BITS == 9
        assert (31 + 9) // 8 == constants.SLOT_SIZE
        assert 2**constants.SECONDARY_HASH_BITS == 512
        # 31 bits at 32 B granularity address the full 64 GiB storage.
        assert (
            2**constants.POINTER_BITS * constants.SLAB_MIN_SIZE
            == constants.HOST_KVS_SIZE
        )

    def test_slab_sizes(self):
        """'a free slab pool for each possible slab size (32, 64, ...,
        512 bytes)'."""
        assert constants.SLAB_SIZES == (32, 64, 128, 256, 512)

    def test_reservation_station(self):
        """'up to 256 in-flight KV operations are needed ... 1024 hash
        slots to make hash collision probability below 25 %'."""
        assert constants.MAX_INFLIGHT_OPS == 256
        assert constants.RESERVATION_STATION_SLOTS == 1024
        collision_probability = (
            constants.MAX_INFLIGHT_OPS / constants.RESERVATION_STATION_SLOTS
        )
        assert collision_probability <= 0.25


class TestSection4Network:
    def test_rdma_overhead(self):
        """'An RDMA write packet over Ethernet has 88 bytes of header and
        padding overhead, while a PCIe TLP packet has only 26 bytes.'"""
        assert constants.RDMA_PACKET_OVERHEAD == 88
        assert constants.RDMA_PACKET_OVERHEAD > 3 * constants.PCIE_TLP_OVERHEAD

    def test_network_latency(self):
        """'lower bandwidth (5 GB/s) and higher latency (2 us)'."""
        assert constants.NETWORK_BANDWIDTH == 5e9
        assert constants.NETWORK_RTT_NS == 2000


class TestSection5Evaluation:
    def test_zipf_skew(self):
        """'we choose skewness 0.99 and refer it as long-tail workload'."""
        assert constants.ZIPF_SKEW == 0.99

    def test_memory_sizes(self):
        """'a 64 GiB KV storage in host memory' / '128 GiB of host
        memory'."""
        assert constants.HOST_KVS_SIZE == 64 * 1024**3
        assert constants.HOST_TOTAL_MEMORY == 128 * 1024**3

    def test_cpu_measurements(self):
        """Section 2.2's measured CPU numbers."""
        assert constants.HOST_RANDOM_READ_NS == 110
        assert constants.CPU_CORE_RANDOM_ACCESS_OPS == 29.3e6
        assert constants.CPU_CORE_KV_OPS == 5.5e6
        assert constants.CPU_CORE_KV_OPS_BATCHED == 7.9e6

    def test_rdma_measurements(self):
        """'high message rate (8-150 Mops)' / '2.24 Mops measured from an
        RDMA NIC' / '0.94 Mops' without OoO."""
        assert constants.RDMA_NIC_MESSAGE_RATE == (8e6, 15e6)
        assert constants.RDMA_ATOMICS_OPS == 2.24e6
        assert constants.KVDIRECT_ATOMICS_NO_OOO_OPS == 0.94e6

    def test_power(self):
        """'the system power is 121.1 watts' / 'an idle server consumes
        87.0 watts' / 'only 34 watts' incremental."""
        assert constants.SERVER_PEAK_POWER_W == pytest.approx(121.1)
        assert constants.SERVER_IDLE_POWER_W == 87.0
        assert constants.KVDIRECT_INCREMENTAL_POWER_W == 34.0
        assert (
            constants.SERVER_PEAK_POWER_W
            == pytest.approx(
                constants.SERVER_IDLE_POWER_W
                + constants.KVDIRECT_INCREMENTAL_POWER_W,
                abs=0.2,
            )
        )
