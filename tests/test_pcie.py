"""Unit tests for the PCIe substrate: TLP arithmetic and the DMA engine."""

import pytest

from repro import constants
from repro.pcie import (
    DMAEngine,
    MultiLinkDMA,
    PCIeLinkConfig,
    effective_bandwidth,
    read_request_bytes,
    read_response_bytes,
    tlp_count,
    write_request_bytes,
)
from repro.pcie.tlp import effective_op_rate
from repro.sim import ConstantLatency, Simulator
from repro.sim.stats import mops


class TestTLPArithmetic:
    def test_tlp_count(self):
        assert tlp_count(0) == 1
        assert tlp_count(64) == 1
        assert tlp_count(256) == 1
        assert tlp_count(257) == 2
        assert tlp_count(1024) == 4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            tlp_count(-1)

    def test_read_request_is_header_only(self):
        assert read_request_bytes(64) == constants.PCIE_TLP_OVERHEAD

    def test_read_response_includes_payload(self):
        assert read_response_bytes(64) == 64 + constants.PCIE_TLP_OVERHEAD

    def test_write_request_includes_payload(self):
        assert write_request_bytes(128) == 128 + constants.PCIE_TLP_OVERHEAD

    def test_paper_effective_bandwidth_figure(self):
        """Section 2.4: 64 B granularity gives 5.6 GB/s on a Gen3 x8."""
        bw = effective_bandwidth(constants.PCIE_GEN3_X8_BANDWIDTH, 64)
        assert bw == pytest.approx(5.6e9, rel=0.01)

    def test_paper_op_rate_figure(self):
        """Section 2.4: ... or 87 Mops."""
        rate = effective_op_rate(constants.PCIE_GEN3_X8_BANDWIDTH, 64)
        assert rate == pytest.approx(87e6, rel=0.01)

    def test_zero_payload_rejected(self):
        with pytest.raises(ValueError):
            effective_bandwidth(1e9, 0)


class TestLinkConfig:
    def test_defaults_match_paper(self):
        config = PCIeLinkConfig()
        assert config.bandwidth == constants.PCIE_GEN3_X8_BANDWIDTH
        assert config.tags == 64
        assert config.posted_credits == 88
        assert config.nonposted_credits == 84

    def test_invalid_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            PCIeLinkConfig(bandwidth=0)
        with pytest.raises(ConfigurationError):
            PCIeLinkConfig(tags=0)
        with pytest.raises(ConfigurationError):
            PCIeLinkConfig(fabric_rtt_ns=-1)


def _engine(sim, latency_ns=1000.0, tags=None):
    config = PCIeLinkConfig(read_latency=ConstantLatency(latency_ns))
    if tags is not None:
        config = PCIeLinkConfig(
            read_latency=ConstantLatency(latency_ns), tags=tags
        )
    return DMAEngine(sim, config)


class TestDMARead:
    def test_single_read_latency(self):
        sim = Simulator()
        engine = _engine(sim, latency_ns=1000.0)
        done = engine.read(64)
        sim.run(done)
        # request 26 B + 1000 ns + response 90 B at 7.87 B/ns
        expected = 26 / 7.87 + 1000.0 + 90 / 7.87
        assert sim.now == pytest.approx(expected, rel=1e-6)
        assert engine.reads == 1

    def test_tag_limit_bounds_concurrency(self):
        sim = Simulator()
        engine = _engine(sim, latency_ns=1000.0, tags=4)
        procs = [engine.read(64) for __ in range(16)]
        sim.run(sim.all_of(procs))
        assert engine.tags.peak_in_use == 4
        # 16 reads with 4-way concurrency need ~4 serial rounds.
        assert sim.now >= 4 * 1000.0

    def test_read_throughput_is_tag_bound_at_64b(self):
        """Reproduces Figure 3a: ~60 Mops for 64 B DMA reads."""
        sim = Simulator()
        engine = DMAEngine(sim, PCIeLinkConfig.gen3_x8())

        completed = []

        def issuer():
            inflight = [engine.read(64) for __ in range(2000)]
            yield sim.all_of(inflight)
            completed.append(len(inflight))

        sim.run(sim.process(issuer()))
        rate = mops(2000, sim.now)
        assert 50.0 < rate < 70.0

    def test_read_latency_histogram_populated(self):
        sim = Simulator()
        engine = _engine(sim)
        sim.run(sim.all_of([engine.read(64) for __ in range(10)]))
        assert engine.read_latency_hist.count == 10
        assert engine.read_latency_hist.min() >= 1000.0


class TestDMAWrite:
    def test_single_write_is_serialization_only(self):
        sim = Simulator()
        engine = _engine(sim)
        done = engine.write(64)
        sim.run(done)
        assert sim.now == pytest.approx(90 / 7.87, rel=1e-6)
        assert engine.writes == 1

    def test_write_throughput_is_bandwidth_bound(self):
        """Figure 3a: 64 B writes reach ~80 Mops (bandwidth-bound)."""
        sim = Simulator()
        engine = DMAEngine(sim, PCIeLinkConfig.gen3_x8())

        def issuer():
            yield sim.all_of([engine.write(64) for __ in range(2000)])

        sim.run(sim.process(issuer()))
        rate = mops(2000, sim.now)
        assert 75.0 < rate < 95.0

    def test_posted_credits_recycle(self):
        sim = Simulator()
        engine = _engine(sim)
        sim.run(sim.all_of([engine.write(64) for __ in range(500)]))
        sim.run()  # drain credit-return processes
        assert engine.posted_credits.available == engine.config.posted_credits


class TestMultiLink:
    def test_round_robin_balances(self):
        sim = Simulator()
        dma = MultiLinkDMA(sim, link_count=2)
        sim.run(sim.all_of([dma.read(64) for __ in range(100)]))
        assert dma.links[0].reads == 50
        assert dma.links[1].reads == 50
        assert dma.reads == 100

    def test_two_links_double_throughput(self):
        sim1 = Simulator()
        single = MultiLinkDMA(sim1, link_count=1)
        sim1.run(sim1.all_of([single.read(64) for __ in range(1000)]))
        single_time = sim1.now

        sim2 = Simulator()
        double = MultiLinkDMA(sim2, link_count=2)
        sim2.run(sim2.all_of([double.read(64) for __ in range(1000)]))
        double_time = sim2.now

        assert double_time == pytest.approx(single_time / 2, rel=0.1)

    def test_invalid_link_count(self):
        with pytest.raises(ValueError):
            MultiLinkDMA(Simulator(), link_count=0)

    def test_snapshot_merges(self):
        sim = Simulator()
        dma = MultiLinkDMA(sim, link_count=2)
        sim.run(sim.all_of([dma.read(64), dma.write(64)]))
        sim.run()
        snap = dma.snapshot()
        assert snap["dma_reads"] == 1
        assert snap["dma_writes"] == 1


class TestMultiTLPTransfers:
    """Payloads above the 256 B max TLP split into several packets."""

    def test_large_read_wire_bytes(self):
        sim = Simulator()
        engine = _engine(sim, latency_ns=1000.0)
        sim.run(engine.read(1024))
        # 4 TLPs of header upstream; 1024 B + 4 headers downstream.
        assert engine.tx.bytes_transferred == 4 * 26
        assert engine.rx.bytes_transferred == 1024 + 4 * 26

    def test_large_write_wire_bytes(self):
        sim = Simulator()
        engine = _engine(sim)
        sim.run(engine.write(512))
        assert engine.tx.bytes_transferred == 512 + 2 * 26

    def test_zero_length_read(self):
        sim = Simulator()
        engine = _engine(sim, latency_ns=100.0)
        sim.run(engine.read(0))
        assert engine.reads == 1
        assert engine.tx.bytes_transferred == 26
