"""The explicit stage pipeline: Stage interface, OpContext lifecycle,
and uniform stage-boundary deadline behaviour."""

import pytest

from repro.core.operations import KVOperation
from repro.core.pipeline import (
    AdmissionStage,
    CompleteStage,
    DecodeStage,
    IssueStage,
    MemoryStage,
    OpContext,
    Stage,
)
from repro.core.processor import KVProcessor
from repro.core.store import KVDirectStore
from repro.errors import DeadlineExceeded
from repro.sim import Simulator


def _processor(**overrides):
    sim = Simulator()
    store = KVDirectStore.create(memory_size=2 << 20, **overrides)
    return sim, KVProcessor(sim, store)


class TestStageGraph:
    def test_front_stage_order(self):
        __, proc = _processor()
        assert [type(s) for s in proc.front_stages] == [
            DecodeStage, AdmissionStage, IssueStage,
        ]
        assert isinstance(proc.memory_stage, MemoryStage)
        assert isinstance(proc.complete_stage, CompleteStage)

    def test_stage_names_are_unique_and_registered(self):
        __, proc = _processor()
        assert set(proc.stages) == {
            "decode", "admission", "issue", "memory", "complete",
        }
        for name, stage in proc.stages.items():
            assert stage.name == name
            assert isinstance(stage, Stage)

    def test_deadline_boundaries_declared_by_stages(self):
        """Every deadline boundary the processor can report comes from a
        stage declaration, not a hand-placed check."""
        __, proc = _processor()
        boundaries = {
            s.deadline_boundary
            for s in proc.stages.values()
            if s.deadline_boundary is not None
        }
        assert boundaries == {"decode", "admission", "pipeline_start"}

    def test_base_stage_run_is_abstract(self):
        __, proc = _processor()
        with pytest.raises(NotImplementedError):
            next(Stage(proc).run(OpContext(op=KVOperation.get(b"k", seq=0))))


class TestOpContext:
    def test_expiry_requires_a_deadline(self):
        ctx = OpContext(op=KVOperation.get(b"k", seq=0))
        assert not ctx.expired(1e12)
        ctx.deadline_ns = 100.0
        assert not ctx.expired(100.0)
        assert ctx.expired(100.1)

    def test_mark_records_stage_entry_times(self):
        ctx = OpContext(op=KVOperation.get(b"k", seq=0))
        ctx.mark("decode", 1.0)
        ctx.mark("memory", 7.5)
        assert ctx.timestamps == {"decode": 1.0, "memory": 7.5}

    def test_context_tracked_in_flight_and_released(self):
        sim, proc = _processor()
        op = KVOperation.get(b"missing", seq=0)
        event = proc.submit(op)
        ctx = proc._contexts[id(op)]
        assert ctx.op is op
        assert ctx.response is event
        assert not ctx.slot_held and not ctx.station_admitted
        sim.run()
        assert event.triggered
        assert not proc._contexts

    def test_contexts_cross_every_front_stage(self):
        sim, proc = _processor()
        seen = {}
        original = proc.emit

        def spy(ctx, stage, detail=""):
            if ctx.seq == 0:
                seen[stage] = dict(ctx.timestamps)
            original(ctx, stage, detail)

        proc.emit = spy
        proc.submit(KVOperation.put(b"k", b"v", seq=0))
        sim.run()
        # By completion the context crossed decode/admission/issue/memory.
        assert set(seen["complete"]) >= {
            "decode", "admission", "issue", "memory",
        }

    def test_writeback_context_is_internal(self):
        __, proc = _processor()
        wb = KVOperation.put(b"k", b"v", seq=-1)
        ctx = proc.context_for(wb)
        assert ctx.response is None
        assert ctx.station_admitted
        assert ctx.deadline_ns is None


class TestUniformDeadlineBoundaries:
    def _expire_at(self, deadline_ns):
        sim, proc = _processor()
        event = proc.submit(
            KVOperation.get(b"k", seq=0), deadline_ns=deadline_ns
        )
        sim.run()
        assert isinstance(event.exception, DeadlineExceeded)
        return proc, event.exception

    def test_decode_boundary(self):
        proc, exc = self._expire_at(1.0)
        assert exc.stage == "decode"
        assert proc.deadline_counters["decode"] == 1

    def test_boundary_counter_matches_exception_stage(self):
        proc, exc = self._expire_at(1.0)
        assert proc.deadline_counters[exc.stage] == 1
        # Exactly one boundary fired for the single op.
        assert sum(proc.deadline_counters.snapshot().values()) == 1

    def test_admission_boundary_under_saturation(self):
        """An op granted its slot after the deadline passed expires at
        the admission boundary, releasing the slot it was granted."""

        sim, proc = _processor(max_inflight=2, reservation_slots=2)
        # Saturate the station with same-key updates (serialized).
        blockers = [
            proc.submit(KVOperation.put(b"hot", b"%04d" % i, seq=i))
            for i in range(40)
        ]
        victim = proc.submit(
            KVOperation.get(b"hot", seq=99), deadline_ns=sim.now + 400.0
        )
        sim.run()
        assert all(b.triggered for b in blockers)
        assert isinstance(victim.exception, DeadlineExceeded)
        assert victim.exception.stage in ("admission", "pipeline_start")
        assert proc.deadline_counters[victim.exception.stage] == 1
        # The slot was handed back: the pool drained fully.
        assert proc.inflight.available == proc.inflight.capacity
