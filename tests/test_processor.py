"""Integration tests for the timed KV processor pipeline."""

import struct

import pytest

from repro.core.operations import KVOperation, OpType
from repro.core.processor import KVProcessor, run_closed_loop
from repro.core.store import KVDirectStore
from repro.core.vector import FETCH_ADD
from repro.sim import Simulator


def q(*values):
    return struct.pack("<%dq" % len(values), *values)


def make_processor(sim=None, **overrides):
    sim = sim or Simulator()
    store = KVDirectStore.create(memory_size=4 << 20, **overrides)
    return KVProcessor(sim, store)


class TestSingleOps:
    def test_get_roundtrip(self):
        proc = make_processor()
        proc.store.put(b"k", b"v")
        result = proc.sim.run(proc.submit(KVOperation.get(b"k")))
        assert result.value == b"v"
        assert proc.completed == 1

    def test_put_then_get(self):
        proc = make_processor()
        sim = proc.sim
        put_ev = proc.submit(KVOperation.put(b"k", b"new"))
        get_ev = proc.submit(KVOperation.get(b"k"))
        sim.run(sim.all_of([put_ev, get_ev]))
        assert get_ev.value.value == b"new"

    def test_missing_get(self):
        proc = make_processor()
        result = proc.sim.run(proc.submit(KVOperation.get(b"nope")))
        assert not result.ok

    def test_delete(self):
        proc = make_processor()
        proc.store.put(b"k", b"v")
        result = proc.sim.run(proc.submit(KVOperation.delete(b"k")))
        assert result.ok
        assert proc.store.get(b"k") is None

    def test_atomic_update(self):
        proc = make_processor()
        proc.store.put(b"ctr", q(41))
        op = KVOperation.update(b"ctr", FETCH_ADD, q(1))
        result = proc.sim.run(proc.submit(op))
        assert result.value == q(41)
        assert proc.store.get(b"ctr") == q(42)

    def test_latency_within_paper_band(self):
        """Tail latency below 10 us (the paper: 3-9 us without batching,
        ~1 us processing for cached small KVs)."""
        proc = make_processor()
        proc.store.put(b"k", b"tiny")
        proc.sim.run(proc.submit(KVOperation.get(b"k")))
        latency = proc.latencies.percentile(50)
        assert 50.0 < latency < 10_000.0


class TestDependentOps:
    def test_get_after_put_sees_new_value(self):
        """The data hazard the OoO engine exists to solve (section 2.4)."""
        proc = make_processor()
        proc.store.put(b"k", b"old")
        sim = proc.sim
        events = [
            proc.submit(KVOperation.put(b"k", b"new")),
            proc.submit(KVOperation.get(b"k")),
        ]
        sim.run(sim.all_of(events))
        assert events[1].value.value == b"new"

    def test_atomic_sequence_consistent(self):
        """Concurrent same-key atomics must produce a dense ticket order."""
        proc = make_processor()
        proc.store.put(b"seq", q(0))
        sim = proc.sim
        ops = [
            KVOperation.update(b"seq", FETCH_ADD, q(1), seq=i)
            for i in range(50)
        ]
        events = proc.submit_many(ops)
        sim.run(sim.all_of(events))
        tickets = sorted(
            struct.unpack("<q", e.value.value)[0] for e in events
        )
        assert tickets == list(range(50))
        assert proc.store.get(b"seq") == q(50)

    def test_atomics_consistent_without_ooo_too(self):
        proc = make_processor(out_of_order=False)
        proc.store.put(b"seq", q(0))
        sim = proc.sim
        events = proc.submit_many(
            [KVOperation.update(b"seq", FETCH_ADD, q(1)) for __ in range(20)]
        )
        sim.run(sim.all_of(events))
        assert proc.store.get(b"seq") == q(20)

    def test_delete_then_get_misses(self):
        proc = make_processor()
        proc.store.put(b"k", b"v")
        sim = proc.sim
        delete_ev = proc.submit(KVOperation.delete(b"k"))
        get_ev = proc.submit(KVOperation.get(b"k"))
        sim.run(sim.all_of([delete_ev, get_ev]))
        assert not get_ev.value.found


class TestThroughputShape:
    """Coarse calibration: who wins and by roughly what factor (Fig 13)."""

    def _atomics_throughput(self, out_of_order, n=2000):
        sim = Simulator()
        store = KVDirectStore.create(
            memory_size=4 << 20, out_of_order=out_of_order
        )
        store.put(b"ctr", q(0))
        proc = KVProcessor(sim, store)
        ops = [
            KVOperation.update(b"ctr", FETCH_ADD, q(1), seq=i)
            for i in range(n)
        ]
        return run_closed_loop(proc, ops, concurrency=200)["throughput_mops"]

    def test_single_key_atomics_reach_clock_bound_with_ooo(self):
        tput = self._atomics_throughput(out_of_order=True)
        assert tput > 100.0  # paper: 180 Mops clock bound

    def test_single_key_atomics_collapse_without_ooo(self):
        tput = self._atomics_throughput(out_of_order=False, n=300)
        assert tput < 10.0  # paper: 0.94 Mops

    def test_ooo_speedup_factor(self):
        """Paper: 191x improvement; we only require >> 10x."""
        with_ooo = self._atomics_throughput(out_of_order=True)
        without = self._atomics_throughput(out_of_order=False, n=300)
        assert with_ooo / without > 10.0

    def test_uniform_get_throughput_band(self):
        """Fig 16a: small-KV uniform GETs land near the PCIe/DRAM bound."""
        sim = Simulator()
        store = KVDirectStore.create(memory_size=4 << 20)
        n = store.fill_to_utilization(0.3, kv_size=13)
        proc = KVProcessor(sim, store)
        ops = [
            KVOperation.get((i % n).to_bytes(8, "big"), seq=i)
            for i in range(4000)
        ]
        stats = run_closed_loop(proc, ops, concurrency=250)
        assert 60.0 < stats["throughput_mops"] < 185.0

    def test_nic_dram_cache_helps_on_skewed_workload(self):
        """Fig 14: hybrid load dispatch beats PCIe-only under a skewed
        workload (under uniform the paper itself finds caching negligible).
        """

        def run(use_nic_dram):
            sim = Simulator()
            store = KVDirectStore.create(
                memory_size=4 << 20, use_nic_dram=use_nic_dram
            )
            n = store.fill_to_utilization(0.3, kv_size=13)
            proc = KVProcessor(sim, store)
            # Hot set of 3000 keys: small enough to live in the NIC DRAM
            # cache (as with the paper's Zipf long-tail) but large enough
            # that OoO forwarding cannot merge the requests instead.
            ops = [
                KVOperation.get((i % 3000).to_bytes(8, "big"), seq=i)
                for i in range(9000)
            ]
            assert n > 3000
            return run_closed_loop(proc, ops, concurrency=250)[
                "throughput_mops"
            ]

        assert run(True) > run(False) * 1.1


class TestAccounting:
    def test_snapshot_keys(self):
        proc = make_processor()
        proc.store.put(b"k", b"v")
        proc.sim.run(proc.submit(KVOperation.get(b"k")))
        snap = proc.snapshot()
        assert snap["admitted"] == 1
        assert snap["main_pipeline_ops"] == 1

    def test_closed_loop_stats_shape(self):
        proc = make_processor()
        proc.store.put(b"k", b"v")
        stats = run_closed_loop(
            proc, [KVOperation.get(b"k", seq=i) for i in range(50)],
            concurrency=8,
        )
        assert stats["operations"] == 50.0
        assert stats["throughput_mops"] > 0
        assert stats["latency_p50_ns"] <= stats["latency_p99_ns"]

    def test_forwarding_counted(self):
        proc = make_processor()
        proc.store.put(b"hot", q(0))
        sim = proc.sim
        events = proc.submit_many(
            [KVOperation.update(b"hot", FETCH_ADD, q(1), seq=i)
             for i in range(30)]
        )
        sim.run(sim.all_of(events))
        assert proc.counters["forwarded"] > 0
        assert proc.counters["writebacks"] > 0


class TestMetrics:
    def test_metrics_shape(self):
        proc = make_processor()
        proc.store.put(b"k", b"v")
        stats = run_closed_loop(
            proc, [KVOperation.get(b"k", seq=i) for i in range(100)],
            concurrency=16,
        )
        metrics = proc.metrics()
        assert metrics["completed_ops"] == 100
        assert metrics["throughput_mops"] > 0
        assert metrics["latency_p50_ns"] <= metrics["latency_p99_ns"]
        assert 0.0 <= metrics["cache_hit_rate"] <= 1.0
        assert metrics["memory_time_mean_ns"] > 0

    def test_memory_time_reflects_cache_vs_pcie(self):
        """Memory time for a repeatedly-hit cached line is far below a
        PCIe round trip."""
        proc = make_processor(load_dispatch_ratio=1.0)
        proc.store.put(b"k", b"v")
        sim = proc.sim
        # Sequential submissions: a concurrent same-key GET would be
        # forwarded and never touch memory at all.
        sim.run(proc.submit(KVOperation.get(b"k", seq=0)))
        sim.run(proc.submit(KVOperation.get(b"k", seq=1)))
        # First access misses (PCIe fill ~1 us); second hits NIC DRAM.
        assert proc.memory_time.min() < 400.0
        assert proc.memory_time.max() > 800.0

    def test_metrics_before_any_op(self):
        proc = make_processor()
        metrics = proc.metrics()
        assert metrics["completed_ops"] == 0
        assert "latency_p50_ns" not in metrics
