"""Stage profiler: timestamp invariants, exact latency attribution, audit.

The load-bearing guarantee under test: for every completed operation the
per-stage (queue, service) segments fold — in pipeline order, in plain
float addition — to *bit-exactly* the measured end-to-end latency, and
the stage-entry timestamps behind them are monotone in pipeline order.
Both must survive faults, shedding, and sharding, because `repro
profile`'s exit code and CI's byte-identity checks stand on them.
"""

import json

import pytest

from repro.core.admission import OverloadPolicy
from repro.core.operations import KVOperation
from repro.core.processor import KVProcessor
from repro.core.store import KVDirectStore
from repro.driver import run_closed_loop
from repro.faults import FaultPlan
from repro.multi import MultiNICServer
from repro.obs import StageProfiler
from repro.obs.attribution import audit, audit_processor
from repro.obs.profiler import (
    STAGE_ORDER,
    merge_folded,
    merged_dict,
    op_class,
)
from repro.sim import Simulator
from repro.workloads import KeySpace, WorkloadSpec, YCSBGenerator


def _ycsb_run(seed=7, ops=600, put_ratio=0.5, corpus=300, concurrency=64,
              **store_overrides):
    sim = Simulator()
    store = KVDirectStore.create(
        memory_size=4 << 20, seed=seed, **store_overrides
    )
    keyspace = KeySpace(count=corpus, kv_size=13, seed=seed)
    for key, value in keyspace.pairs():
        store.put(key, value)
    store.reset_measurements()
    profiler = StageProfiler()
    processor = KVProcessor(sim, store, profiler=profiler)
    generator = YCSBGenerator(keyspace, WorkloadSpec(put_ratio=put_ratio))
    stats = run_closed_loop(
        processor, generator.operations(ops), concurrency=concurrency
    )
    return profiler, processor, stats


def _fold(record):
    """Fold queue + service over segments the way the invariant defines."""
    total = 0.0
    for __, queue_ns, service_ns in record.segments:
        total += queue_ns
        total += service_ns
    return total


def _assert_invariants(profiler):
    assert profiler.records, "run recorded no operations"
    for record in profiler.records:
        order = [stage for stage, __ in record.timestamps]
        assert order == [s for s in STAGE_ORDER if s in order]
        times = [at for __, at in record.timestamps]
        assert times == sorted(times)
        assert record.submitted_ns <= times[0]
        assert times[-1] <= record.completed_ns
        for __, queue_ns, service_ns in record.segments:
            assert queue_ns >= 0.0
            assert service_ns >= 0.0
        assert _fold(record) == record.latency_ns  # bit-exact, not approx


class TestSegmentInvariants:
    def test_timestamps_monotone_and_sum_exact(self):
        profiler, __, __stats = _ycsb_run()
        _assert_invariants(profiler)

    @pytest.mark.parametrize("seed", [0, 7, 13, 42])
    def test_exact_sum_across_seeds(self, seed):
        # Seed 7 at this op count historically hit a round-half-even tie
        # where no adjustment of the final span alone could reproduce the
        # latency; the ulp-nudge fallback must keep the fold exact.
        profiler, __, __stats = _ycsb_run(seed=seed, ops=1500)
        _assert_invariants(profiler)

    def test_forwarded_ops_skip_memory(self):
        profiler, __, __stats = _ycsb_run(put_ratio=0.0)
        forwarded = [r for r in profiler.records if r.forwarded]
        assert forwarded, "expected some data-forwarded GETs"
        for record in forwarded:
            assert "memory" not in dict(record.timestamps)
        profile = profiler.classes["get"]
        assert profile.forwarded == len(forwarded)

    def test_accounting_identity(self):
        profiler, __, __stats = _ycsb_run()
        for profile in profiler.classes.values():
            assert profile.submitted == (
                profile.completed + profile.shed
                + profile.expired + profile.failed
            )


class TestUnderFaults:
    def test_invariants_hold_with_fault_plan(self):
        from repro.client import KVClient

        sim = Simulator()
        store = KVDirectStore.create(
            memory_size=4 << 20, seed=3,
            fault_plan=FaultPlan(packet_loss_prob=0.05, dma_delay_prob=0.05),
        )
        for i in range(64):
            store.put(b"key%02d" % i, b"value%02d" % i)
        store.reset_measurements()
        profiler = StageProfiler()
        processor = KVProcessor(sim, store, profiler=profiler)
        client = KVClient(sim, processor, batch_size=8)
        client.run([
            KVOperation.get(b"key%02d" % (i % 64), seq=i)
            for i in range(400)
        ])
        _assert_invariants(profiler)

    def test_shed_ops_counted_not_recorded(self):
        from repro.client import KVClient

        sim = Simulator()
        store = KVDirectStore.create(
            memory_size=4 << 20, seed=0,
            overload=OverloadPolicy(queue_depth=1), max_inflight=1,
        )
        for i in range(16):
            store.put(b"key%02d" % i, b"value%02d" % i)
        store.reset_measurements()
        profiler = StageProfiler()
        processor = KVProcessor(sim, store, profiler=profiler)
        client = KVClient(sim, processor, batch_size=8)
        client.run([
            KVOperation.get(b"key%02d" % (i % 16), seq=i)
            for i in range(64)
        ])
        shed = sum(p.shed for p in profiler.classes.values())
        assert shed > 0
        # Shed submissions never complete, so no record carries them.
        completed = sum(p.completed for p in profiler.classes.values())
        assert len(profiler.records) == completed
        _assert_invariants(profiler)


class TestSharded:
    def test_invariants_hold_per_shard(self):
        sim = Simulator()
        server = MultiNICServer(sim, nic_count=4, profile=True)
        for i in range(256):
            server.put_direct(b"key%04d" % i, b"v" * 5)
        ops = [
            KVOperation.get(b"key%04d" % (i % 256), seq=i)
            for i in range(1200)
        ]
        server.run_closed_loop(ops)
        profilers = server.profilers
        assert len(profilers) == 4
        assert [p.name for p in profilers] == [f"nic{i}" for i in range(4)]
        for profiler in profilers:
            _assert_invariants(profiler)
        completed = sum(
            p.classes["get"].completed for p in profilers
        )
        assert completed == 1200

    def test_merged_exports_carry_shard_prefixes(self):
        sim = Simulator()
        server = MultiNICServer(sim, nic_count=2, profile=True)
        for i in range(64):
            server.put_direct(b"key%02d" % i, b"v" * 5)
        server.run_closed_loop([
            KVOperation.get(b"key%02d" % (i % 64), seq=i)
            for i in range(200)
        ])
        lines = merge_folded(server.profilers)
        assert lines
        assert all(line.startswith(("nic0;", "nic1;")) for line in lines)
        merged = merged_dict(server.profilers)
        assert set(merged["shards"]) == {"nic0", "nic1"}


class TestExports:
    def test_json_deterministic_across_runs(self):
        a, __, __s = _ycsb_run(seed=11, ops=400)
        b, __, __s = _ycsb_run(seed=11, ops=400)
        assert a.to_json() == b.to_json()
        assert a.folded() == b.folded()

    def test_folded_line_format(self):
        profiler, __, __stats = _ycsb_run(ops=200)
        for line in profiler.folded():
            frame, count = line.rsplit(" ", 1)
            name, stage, kind = frame.split(";")
            assert name in ("get", "put", "delete", "atomic", "vector")
            assert stage in STAGE_ORDER
            assert kind in ("queue", "service")
            assert int(count) > 0

    def test_as_dict_roundtrips_through_json(self):
        profiler, __, __stats = _ycsb_run(ops=200)
        data = json.loads(profiler.to_json())
        assert data["schema"] == 1
        get = data["op_classes"]["get"]
        stage_total = sum(
            s["queue_ns"] + s["service_ns"] for s in get["stages"].values()
        )
        assert stage_total == pytest.approx(get["latency_total_ns"])


class TestOpClass:
    def test_buckets(self):
        from repro.core.vector import FETCH_ADD
        import struct

        assert op_class(KVOperation.get(b"k")) == "get"
        assert op_class(KVOperation.put(b"k", b"v")) == "put"
        assert op_class(KVOperation.delete(b"k")) == "delete"
        assert op_class(
            KVOperation.update(b"k", FETCH_ADD, struct.pack("<q", 1))
        ) == "atomic"


class _FakeAllocator:
    def __init__(self, allocs, frees, sync_dmas):
        self.counters = {"allocs": allocs, "frees": frees}
        self.sync_dmas = sync_dmas


class TestAudit:
    def test_passes_on_clean_inline_run(self):
        __, processor, __stats = _ycsb_run(ops=1000)
        report = audit_processor(processor)
        assert report.passed
        by_name = {check.name: check for check in report.checks}
        assert by_name["accesses per GET"].measured == pytest.approx(
            1.0, rel=0.2
        )
        assert by_name["accesses per PUT"].measured == pytest.approx(
            2.0, rel=0.2
        )

    def test_denominator_excludes_forwarded(self):
        profiler = StageProfiler()
        profile = profiler.class_profile("get")
        profile.completed = 10
        profile.forwarded = 5
        profile.memory.table_reads = 5
        report = audit([profiler])
        by_name = {check.name: check for check in report.checks}
        assert by_name["accesses per GET"].measured == 1.0
        assert by_name["accesses per GET"].status == "PASS"

    def test_unexercised_classes_audit_na(self):
        report = audit([StageProfiler()])
        assert report.passed
        assert all(check.status == "n/a" for check in report.checks)

    def test_fails_beyond_tolerance(self):
        profiler = StageProfiler()
        profile = profiler.class_profile("get")
        profile.completed = 10
        profile.memory.table_reads = 30
        report = audit([profiler])
        by_name = {check.name: check for check in report.checks}
        assert by_name["accesses per GET"].status == "FAIL"
        assert not report.passed
        assert report.verdict == "FAIL"

    def test_slab_upper_bound(self):
        profiler = StageProfiler()
        ok = audit([profiler], allocators=[_FakeAllocator(100, 100, 5)])
        bad = audit([profiler], allocators=[_FakeAllocator(100, 100, 30)])
        slab = [c for c in ok.checks if c.kind == "upper"][0]
        assert slab.measured == 0.025
        assert slab.status == "PASS"
        slab = [c for c in bad.checks if c.kind == "upper"][0]
        assert slab.status == "FAIL"

    def test_forwarded_share_reported(self):
        profiler, __, __stats = _ycsb_run(ops=400)
        report = audit([profiler])
        assert 0.0 <= report.info["forwarded_share"] < 1.0

    def test_audit_processor_requires_profiler(self):
        sim = Simulator()
        store = KVDirectStore.create(memory_size=4 << 20)
        processor = KVProcessor(sim, store)
        with pytest.raises(ValueError, match="no attached StageProfiler"):
            audit_processor(processor)
