"""Ordered RANGE/SCAN end-to-end: index, wire format, routing, OoO.

Covers the pluggable-index refactor: the :class:`OrderedIndex` sidecar's
access model, the RANGE/SCAN wire encoding (count field limits, reserved
opcodes), the scan payload codec and its cross-shard k-way merge, the
reservation station's scan guard, and the deterministic sharded/cluster
fan-out paths.
"""

import pytest

from repro.client.router import ClusterRouter, ShardRouter
from repro.core.config import KVDirectConfig
from repro.core.operations import (
    MAX_SCAN_COUNT,
    KVOperation,
    OpType,
    decode_scan_payload,
    encode_scan_payload,
    merge_scan_payloads,
)
from repro.core.store import KVDirectStore
from repro.driver import run_closed_loop_sharded
from repro.errors import ProtocolError, UnsupportedOperation
from repro.multi import MultiNICServer
from repro.network.batching import BatchEncoder, decode_batch, encode_batch
from repro.sim import Simulator


def _ordered_store(**overrides):
    return KVDirectStore.create(
        memory_size=4 << 20, ordered_index=True, **overrides
    )


def _fill(store, n=64, prefix=b"key"):
    pairs = []
    for i in range(n):
        key = prefix + b"%05d" % i
        value = b"v%04d" % i
        store.put(key, value)
        pairs.append((key, value))
    return pairs


class TestOrderedIndex:
    def test_range_returns_sorted_slice(self):
        store = _ordered_store()
        pairs = _fill(store)
        got = store.range_scan(b"key00010", 5)
        assert got == pairs[10:15]

    def test_scan_keys_only(self):
        store = _ordered_store()
        pairs = _fill(store)
        got = store.range_scan(b"key00000", 3, with_values=False)
        assert got == [(key, None) for key, __ in pairs[:3]]

    def test_start_between_keys(self):
        store = _ordered_store()
        pairs = _fill(store)
        got = store.range_scan(b"key00010x", 2)
        assert got == pairs[11:13]

    def test_start_before_first_key(self):
        store = _ordered_store()
        pairs = _fill(store)
        assert store.range_scan(b"a", 2) == pairs[:2]

    def test_range_past_end_truncates(self):
        store = _ordered_store()
        pairs = _fill(store, n=8)
        assert store.range_scan(b"key00006", 100) == pairs[6:]

    def test_delete_maintains_order(self):
        store = _ordered_store()
        pairs = _fill(store)
        store.delete(pairs[11][0])
        got = store.range_scan(b"key00010", 3)
        assert got == [pairs[10], pairs[12], pairs[13]]

    def test_overwrite_does_not_duplicate(self):
        store = _ordered_store()
        _fill(store, n=16)
        store.put(b"key00005", b"other")
        got = store.range_scan(b"key00005", 2)
        assert got == [(b"key00005", b"other"), (b"key00006", b"v0006")]

    def test_leaf_split_and_drain(self):
        """Insertions past a leaf's capacity split it; deleting every key
        frees the leaves again (slab allocs returned)."""
        store = _ordered_store()
        pairs = _fill(store, n=100)
        assert len(store.ordered._leaves) > 1
        assert store.range_scan(b"key00000", 100) == pairs
        for key, __ in pairs:
            assert store.delete(key)
        assert store.ordered._leaves == []
        assert store.ordered.count == 0

    def test_scan_costs_accesses(self):
        """Scans pay modeled memory accesses (leaf reads + value probes),
        visible in dma_stats like GET/PUT costs."""
        store = _ordered_store()
        _fill(store)
        store.reset_measurements()
        store.range_scan(b"key00000", 32)
        stats = store.dma_stats()
        assert stats["scan_mean_accesses"] > 1.0
        assert stats["memory_accesses"] > 0

    def test_disabled_store_raises_unsupported(self):
        store = KVDirectStore.create(memory_size=4 << 20)
        _fill(store, n=4)
        with pytest.raises(UnsupportedOperation):
            store.range_scan(b"key00000", 2)

    def test_execute_wraps_payload(self):
        store = _ordered_store()
        pairs = _fill(store, n=8)
        result = store.execute(KVOperation.range(b"key00002", 3, seq=7))
        assert result.ok and result.seq == 7
        assert decode_scan_payload(result.value, True) == pairs[2:5]
        result = store.execute(KVOperation.scan(b"key00002", 3, seq=8))
        assert decode_scan_payload(result.value, False) == [
            (key, None) for key, __ in pairs[2:5]
        ]


class TestScanPayloadCodec:
    def test_roundtrip_with_values(self):
        entries = [(b"a", b"1"), (b"bb", b"x" * 300), (b"c" * 255, b"")]
        payload = encode_scan_payload(entries, True)
        assert decode_scan_payload(payload, True) == entries

    def test_roundtrip_keys_only(self):
        entries = [(b"a", None), (b"b", None)]
        payload = encode_scan_payload(entries, False)
        assert decode_scan_payload(payload, False) == entries

    def test_merge_sorts_and_truncates(self):
        shards = [
            encode_scan_payload([(b"a", b"1"), (b"d", b"4")], True),
            encode_scan_payload([(b"b", b"2"), (b"e", b"5")], True),
            encode_scan_payload([(b"c", b"3")], True),
        ]
        merged = merge_scan_payloads(shards, 4, with_values=True)
        assert decode_scan_payload(merged, True) == [
            (b"a", b"1"), (b"b", b"2"), (b"c", b"3"), (b"d", b"4")
        ]

    def test_merge_of_empty_partials(self):
        empty = encode_scan_payload([], True)
        assert decode_scan_payload(
            merge_scan_payloads([empty, empty], 5, with_values=True), True
        ) == []

    def test_truncated_payload_rejected(self):
        payload = encode_scan_payload([(b"key", b"value")], True)
        with pytest.raises(ProtocolError):
            decode_scan_payload(payload[:-1], True)


class TestRangeWireFormat:
    def test_range_scan_roundtrip(self):
        ops = [
            KVOperation.range(b"start", 7, seq=1),
            KVOperation.scan(b"start", 65535, seq=2),
            KVOperation.get(b"start", seq=3),
        ]
        assert decode_batch(encode_batch(ops)) == ops

    def test_range_max_key_roundtrip(self):
        ops = [KVOperation.range(b"k" * 255, MAX_SCAN_COUNT)]
        assert decode_batch(encode_batch(ops)) == ops

    def test_count_limits_enforced_at_construction(self):
        with pytest.raises(ValueError, match="count"):
            KVOperation.range(b"k", 0)
        with pytest.raises(ValueError, match="count"):
            KVOperation.range(b"k", 65536)
        with pytest.raises(ValueError, match="count"):
            KVOperation(OpType.GET, b"k", count=3)

    def test_forged_count_rejected_by_encoder(self):
        """The encoder guards the u16 count field even when dataclass
        validation was bypassed."""
        op = object.__new__(KVOperation)
        for name, val in (
            ("op", OpType.RANGE), ("key", b"k"), ("value", None),
            ("func_id", 0), ("param", b""), ("count", 0x10000),
            ("seq", 0), ("epoch", -1),
        ):
            object.__setattr__(op, name, val)
        encoder = BatchEncoder()
        with pytest.raises(ProtocolError, match="count"):
            encoder.add(op)
        assert encoder.count == 0

    def test_zero_count_on_wire_rejected(self):
        """A zero scan count can only come from a corrupt packet."""
        payload = bytearray(encode_batch([KVOperation.range(b"kk", 1)]))
        # Batch header u16 + lead byte + klen byte, then the count u16.
        offset = 2 + 1 + 1
        assert payload[offset:offset + 2] == b"\x01\x00"
        payload[offset:offset + 2] = b"\x00\x00"
        with pytest.raises(ProtocolError, match="zero scan count"):
            decode_batch(bytes(payload))

    @pytest.mark.parametrize("opcode", range(10, 16))
    def test_reserved_opcodes_rejected(self, opcode):
        """Opcodes 10-15 are unassigned: the decoder must raise a typed
        ProtocolError, not misparse or crash."""
        packet = b"\x01\x00" + bytes([opcode]) + b"\x01k"
        with pytest.raises(ProtocolError, match="opcode"):
            decode_batch(packet)

    @pytest.mark.parametrize("opcode", (8, 9))
    def test_scan_opcodes_now_assigned(self, opcode):
        """Opcodes 8 (RANGE) and 9 (SCAN) decode with their count field."""
        packet = b"\x01\x00" + bytes([opcode]) + b"\x01" + b"\x02\x00" + b"k"
        (op,) = decode_batch(packet)
        assert op.op is (OpType.RANGE if opcode == 8 else OpType.SCAN)
        assert op.key == b"k" and op.count == 2


class TestOoOScanGuard:
    def _processor(self):
        from repro.core.processor import KVProcessor

        sim = Simulator()
        store = _ordered_store()
        _fill(store, n=32)
        return sim, KVProcessor(sim, store)

    def test_scan_between_same_key_writes(self):
        """A RANGE queued behind a PUT on the same key must execute
        against memory, not be resolved by data forwarding (its result
        is a multi-entry payload, not the forwarded value)."""
        sim, processor = self._processor()
        key = b"key00004"
        events = [
            processor.submit(KVOperation.put(key, b"fresh", seq=0)),
            processor.submit(KVOperation.range(key, 2, seq=1)),
            processor.submit(KVOperation.get(key, seq=2)),
        ]
        sim.run(sim.all_of(events))
        entries = decode_scan_payload(events[1].value.value, True)
        assert entries[0] == (key, b"fresh")
        assert events[2].value.value == b"fresh"

    def test_scan_burst_completes(self):
        sim, processor = self._processor()
        events = [
            processor.submit(KVOperation.scan(b"key%05d" % (i % 8), 4,
                                              seq=i))
            for i in range(64)
        ]
        sim.run(sim.all_of(events))
        assert all(event.ok and event.value.ok for event in events)


def _sharded_scan_run(nics=4, seed=3):
    sim = Simulator()
    server = MultiNICServer(
        sim,
        nic_count=nics,
        config=KVDirectConfig(memory_size=4 << 20, seed=seed,
                              ordered_index=True),
    )
    pairs = []
    for i in range(128):
        key, value = b"key%05d" % i, b"v%04d" % i
        server.put_direct(key, value)
        pairs.append((key, value))
    ops = [
        KVOperation.get(pairs[i][0], seq=i) for i in range(0, 40, 2)
    ] + [
        KVOperation.range(b"key%05d" % (i * 3), 6, seq=100 + i)
        for i in range(10)
    ]
    scan_results = {}
    stats = run_closed_loop_sharded(server, ops,
                                    scan_results=scan_results)
    return pairs, ops, scan_results, stats


class TestShardedScans:
    def test_fanout_merges_correct_slices(self):
        pairs, __, scan_results, __stats = _sharded_scan_run()
        assert len(scan_results) == 10
        for i in range(10):
            entries = decode_scan_payload(scan_results[100 + i], True)
            assert entries == pairs[i * 3:i * 3 + 6]

    def test_merge_is_seed_stable(self):
        """Regression: merged sharded scan results are byte-identical
        across runs (partials merged in seq order, shards in shard-index
        order - never in simulated completion order)."""
        __, __, first, __s = _sharded_scan_run()
        __, __, second, __s2 = _sharded_scan_run()
        assert first == second

    def test_single_shard_equals_multi_shard(self):
        __, __, one, __s = _sharded_scan_run(nics=1)
        __, __, four, __s2 = _sharded_scan_run(nics=4)
        assert one == four


class TestShardRouterScans:
    def _run(self, shards):
        sim = Simulator()
        server = MultiNICServer(
            sim,
            nic_count=shards,
            config=KVDirectConfig(memory_size=4 << 20,
                                  ordered_index=True),
        )
        pairs = []
        for i in range(96):
            key, value = b"key%05d" % i, b"v%04d" % i
            server.put_direct(key, value)
            pairs.append((key, value))
        ops = [
            KVOperation.range(b"key%05d" % (i * 7), 5, seq=i)
            for i in range(12)
        ]
        router = server.router(batch_size=4, checksum=True)
        router.run(ops)
        return pairs, router.scan_results(ops)

    def test_partition_replicates_scans(self):
        sim = Simulator()
        server = MultiNICServer(
            sim, nic_count=3,
            config=KVDirectConfig(memory_size=4 << 20,
                                  ordered_index=True),
        )
        router = server.router()
        parts = router.partition([
            KVOperation.get(b"point", seq=0),
            KVOperation.range(b"start", 4, seq=1),
        ])
        scans_per_shard = [
            sum(1 for op in part if op.carries_count) for part in parts
        ]
        assert scans_per_shard == [1, 1, 1]
        assert sum(len(part) for part in parts) == 4

    def test_client_merge_matches_store(self):
        pairs, merged = self._run(shards=3)
        assert len(merged) == 12
        for i in range(12):
            entries = decode_scan_payload(merged[i], True)
            assert entries == pairs[i * 7:i * 7 + 5]

    def test_client_merge_shard_count_invariant(self):
        __, one = self._run(shards=1)
        __, three = self._run(shards=3)
        assert one == three


class TestClusterScans:
    def test_perform_scan_merges_across_primaries(self):
        from repro.multi import Cluster

        sim = Simulator()
        cluster = Cluster(
            sim, num_nodes=3, num_slots=8,
            config=KVDirectConfig(memory_size=4 << 20, seed=1,
                                  ordered_index=True),
        )
        pairs = []
        for i in range(64):
            key, value = b"key%05d" % i, b"v%04d" % i
            cluster.preload(key, value)
            pairs.append((key, value))
        router = ClusterRouter(sim, cluster, seed=1)
        results = {}

        def driver():
            for i in range(6):
                op = KVOperation.range(b"key%05d" % (i * 9), 4,
                                       seq=200 + i)
                results[i] = yield from router.perform_scan(op)

        sim.run(sim.process(driver()))
        for i in range(6):
            assert results[i].ok
            entries = decode_scan_payload(results[i].value, True)
            assert entries == pairs[i * 9:i * 9 + 4]

    def test_perform_scan_rejects_point_ops(self):
        from repro.errors import ConfigurationError
        from repro.multi import Cluster

        sim = Simulator()
        cluster = Cluster(
            sim, num_nodes=2, num_slots=4,
            config=KVDirectConfig(memory_size=4 << 20,
                                  ordered_index=True),
        )
        router = ClusterRouter(sim, cluster)
        with pytest.raises(ConfigurationError):
            next(router.perform_scan(KVOperation.get(b"k")))
