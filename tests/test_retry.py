"""Client retry semantics: backoff schedules, budgets, circuit breaker.

Pins down the exact deterministic backoff schedules (with and without the
cap, with and without jitter), the shared retry budget's fast-fail
behaviour, the breaker automaton's transitions, and the separation of
loss retries from ServerBusy retries in the client - the two retry kinds
run on independent counters and independent backoff streams.
"""

import json

import pytest

from repro.client import (
    BackoffPolicy,
    CircuitBreaker,
    KVClient,
    RetryBudget,
)
from repro.client.robust import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)
from repro.core.admission import OverloadPolicy
from repro.core.operations import KVOperation
from repro.core.processor import KVProcessor
from repro.core.store import KVDirectStore
from repro.errors import ConfigurationError, RetryExhausted
from repro.faults import FaultPlan
from repro.obs import MetricsRegistry
from repro.sim import Simulator


class TestBackoffPolicy:
    def test_uncapped_schedule_is_exact(self):
        policy = BackoffPolicy(1000.0)
        assert [policy.delay(a) for a in range(1, 6)] == [
            1000.0, 2000.0, 4000.0, 8000.0, 16000.0
        ]

    def test_cap_clamps_the_tail(self):
        policy = BackoffPolicy(1000.0, max_ns=5000.0)
        assert [policy.delay(a) for a in range(1, 6)] == [
            1000.0, 2000.0, 4000.0, 5000.0, 5000.0
        ]

    def test_jitter_is_seed_deterministic(self):
        a = BackoffPolicy(1000.0, jitter=0.5, seed=3, stream="loss")
        b = BackoffPolicy(1000.0, jitter=0.5, seed=3, stream="loss")
        schedule = [a.delay(n) for n in range(1, 8)]
        assert [b.delay(n) for n in range(1, 8)] == schedule
        # Jitter only ever stretches the delay, never shrinks it.
        for attempt, delay in enumerate(schedule, start=1):
            base = 1000.0 * 2 ** (attempt - 1)
            assert base <= delay <= 1.5 * base

    def test_streams_are_independent(self):
        loss = BackoffPolicy(1000.0, jitter=0.5, seed=3, stream="loss")
        busy = BackoffPolicy(1000.0, jitter=0.5, seed=3, stream="busy")
        assert [loss.delay(n) for n in range(1, 8)] != [
            busy.delay(n) for n in range(1, 8)
        ]

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(-1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(1000.0, max_ns=500.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(1000.0, jitter=1.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(1000.0).delay(0)

    def test_loss_and_busy_sequences_each_replay_under_one_seed(self):
        """Both retry-kind streams are independently deterministic: for a
        fixed seed each stream replays its own jitter sequence exactly,
        and draining one stream never perturbs the other."""
        first = {}
        for kind in ("loss", "busy"):
            policy = BackoffPolicy(1000.0, jitter=0.5, seed=9, stream=kind)
            first[kind] = [policy.delay(n) for n in range(1, 10)]
        # Replay with the draw order inverted across streams: interleaved
        # policies over the same seed must reproduce both sequences.
        loss = BackoffPolicy(1000.0, jitter=0.5, seed=9, stream="loss")
        busy = BackoffPolicy(1000.0, jitter=0.5, seed=9, stream="busy")
        replay = {"loss": [], "busy": []}
        for n in range(1, 10):
            replay["busy"].append(busy.delay(n))
            replay["loss"].append(loss.delay(n))
        assert replay == first

    def test_jitter_sequence_survives_a_budget_refill(self):
        """The backoff RNG is private to the policy: spending a
        RetryBudget dry and refilling it between draws must leave the
        jitter sequence byte-identical to an uninterrupted one."""
        plain = BackoffPolicy(1000.0, jitter=0.5, seed=4, stream="loss")
        expected = [plain.delay(n) for n in range(1, 8)]

        policy = BackoffPolicy(1000.0, jitter=0.5, seed=4, stream="loss")
        budget = RetryBudget(capacity=2.0, refill_per_success=1.0)
        observed = []
        for attempt in range(1, 8):
            if not budget.try_spend():
                # Refill mid-sequence - the interleaving under test.
                budget.on_success()
                assert budget.try_spend()
            observed.append(policy.delay(attempt))
        assert observed == expected
        assert budget.spent == 7


class TestRetryBudget:
    def test_spend_until_empty_then_refuse(self):
        budget = RetryBudget(capacity=2.0, refill_per_success=0.5)
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        assert budget.spent == 2 and budget.refused == 1

    def test_successes_refill_fractionally(self):
        budget = RetryBudget(capacity=2.0, refill_per_success=0.5)
        budget.try_spend(), budget.try_spend()
        budget.on_success()
        assert not budget.try_spend()  # 0.5 < 1.0
        budget.on_success()
        assert budget.try_spend()

    def test_refill_caps_at_capacity(self):
        budget = RetryBudget(capacity=2.0, refill_per_success=5.0)
        budget.on_success()
        assert budget.tokens == 2.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryBudget(capacity=0)
        with pytest.raises(ConfigurationError):
            RetryBudget(refill_per_success=-1)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        defaults = dict(
            window_ns=1000.0, failure_threshold=0.5,
            min_samples=4, open_ns=100.0,
        )
        defaults.update(kwargs)
        return clock, CircuitBreaker(clock, **defaults)

    def test_trips_at_threshold_with_min_samples(self):
        __, breaker = self._breaker()
        breaker.record(False)
        breaker.record(False)
        breaker.record(False)
        assert breaker.state == "closed"  # only 3 < min_samples outcomes
        breaker.record(True)
        # 3/4 failures >= 0.5 threshold with 4 >= min_samples -> open.
        assert breaker.state == "open"
        assert breaker.state_code() == BREAKER_OPEN
        assert breaker.opens == 1

    def test_open_refuses_until_open_ns_elapses(self):
        clock, breaker = self._breaker(min_samples=1, failure_threshold=1.0)
        breaker.record(False)
        assert not breaker.allow()
        assert breaker.wait_ns() == 100.0
        clock.now = 99.0
        assert not breaker.allow()
        clock.now = 100.0
        assert breaker.allow()  # first allowed call -> half-open probe
        assert breaker.state == "half-open"
        assert breaker.state_code() == BREAKER_HALF_OPEN

    def test_half_open_probe_success_closes(self):
        clock, breaker = self._breaker(min_samples=1, failure_threshold=1.0)
        breaker.record(False)
        clock.now = 100.0
        breaker.allow()
        breaker.record(True)
        assert breaker.state == "closed"
        assert breaker.state_code() == BREAKER_CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock, breaker = self._breaker(min_samples=1, failure_threshold=1.0)
        breaker.record(False)
        clock.now = 100.0
        breaker.allow()
        breaker.record(False)
        assert breaker.state == "open"
        assert breaker.opens == 2
        assert breaker.wait_ns() == 100.0  # timer restarted at now=100

    def test_window_prunes_stale_outcomes(self):
        clock, breaker = self._breaker()
        for __ in range(3):
            breaker.record(False)
        clock.now = 2000.0  # the failures age out of the 1000 ns window
        for __ in range(4):
            breaker.record(True)
        assert breaker.state == "closed"

    def test_validation(self):
        clock = FakeClock()
        with pytest.raises(ConfigurationError):
            CircuitBreaker(clock, window_ns=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(clock, failure_threshold=0.0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(clock, min_samples=0)


def _client_setup(plan=None, overload=None, max_inflight=256,
                  **client_kwargs):
    store = KVDirectStore.create(
        memory_size=4 << 20, fault_plan=plan, overload=overload,
        max_inflight=max_inflight, seed=0,
    )
    sim = Simulator()
    processor = KVProcessor(sim, store)
    client = KVClient(sim, processor, **client_kwargs)
    return sim, store, client


def _gets(store, count=24):
    for i in range(8):
        store.put(b"key%02d" % i, b"value%02d" % i)
    return [KVOperation.get(b"key%02d" % (i % 8), seq=i)
            for i in range(count)]


class TestClientLossRetries:
    def test_retry_limit_zero_fails_fast(self):
        sim, store, client = _client_setup(
            plan=FaultPlan(packet_loss_prob=1.0),
            retry_limit=0, batch_size=8,
        )
        with pytest.raises(RetryExhausted, match="retry limit 0"):
            client.run(_gets(store, count=8))
        assert client.retries == 0

    def test_exhaustion_message_reports_time_waited(self):
        sim, store, client = _client_setup(
            plan=FaultPlan(packet_loss_prob=1.0),
            retry_limit=3, retry_backoff_ns=1000.0, batch_size=8,
        )
        # Deterministic uncapped schedule: 1000 + 2000 + 4000 ns waited
        # before the fourth loss exhausts the limit.
        with pytest.raises(
            RetryExhausted, match=r"waited 7000 ns in backoff"
        ):
            client.run(_gets(store, count=8))

    def test_cap_bounds_the_waited_time(self):
        sim, store, client = _client_setup(
            plan=FaultPlan(packet_loss_prob=1.0),
            retry_limit=3, retry_backoff_ns=1000.0,
            max_backoff_ns=1500.0, busy_backoff_ns=500.0, batch_size=8,
        )
        # Capped: 1000 + 1500 + 1500 ns.
        with pytest.raises(
            RetryExhausted, match=r"waited 4000 ns in backoff"
        ):
            client.run(_gets(store, count=8))

    def test_budget_exhaustion_fails_fast_before_limit(self):
        budget = RetryBudget(capacity=2.0, refill_per_success=0.0)
        sim, store, client = _client_setup(
            plan=FaultPlan(packet_loss_prob=1.0),
            retry_limit=50, batch_size=8, retry_budget=budget,
        )
        with pytest.raises(RetryExhausted, match="retry budget"):
            client.run(_gets(store, count=8))
        assert budget.refused >= 1
        assert client.retries < 50

    def test_lossy_run_with_jitter_is_deterministic(self):
        def run():
            sim, store, client = _client_setup(
                plan=FaultPlan.transient_network(loss=0.2),
                retry_limit=16, backoff_jitter=0.3, seed=9, batch_size=8,
            )
            stats = client.run(_gets(store, count=48))
            return stats.as_dict(), sim.now
        assert run() == run()


class TestClientBusyRetries:
    """ServerBusy NACKs retry on their own counter and backoff stream."""

    def _busy_run(self, **kwargs):
        # One token and a one-deep queue: any burst sheds most of a batch.
        defaults = dict(
            overload=OverloadPolicy(queue_depth=1), max_inflight=1,
            batch_size=16, busy_backoff_ns=500.0,
        )
        defaults.update(kwargs)
        sim, store, client = _client_setup(**defaults)
        stats = client.run(_gets(store, count=16))
        return sim, client, stats

    def test_nacks_are_retried_to_completion(self):
        sim, client, stats = self._busy_run(busy_retry_limit=64)
        assert stats.busy_nacks > 0
        assert stats.busy_retries > 0
        assert stats.failed_ops == 0
        assert len(client.responses) == 16
        # Loss retries are a different counter; no loss was injected.
        assert stats.retries == 0

    def test_busy_retry_limit_gives_up(self):
        sim, client, stats = self._busy_run(
            busy_retry_limit=0, max_outstanding_batches=1
        )
        assert stats.busy_give_ups > 0
        assert stats.busy_give_ups == stats.failed_ops
        assert stats.busy_retries == 0

    def test_budget_stops_busy_retries(self):
        budget = RetryBudget(capacity=1.0, refill_per_success=0.0)
        sim, client, stats = self._busy_run(
            busy_retry_limit=64, retry_budget=budget
        )
        assert stats.busy_give_ups > 0
        assert budget.refused >= 1

    def test_breaker_opens_under_sustained_nacks(self):
        breaker = None
        sim, store, client = (None, None, None)
        store = KVDirectStore.create(
            memory_size=4 << 20,
            overload=OverloadPolicy(queue_depth=1),
            max_inflight=1, seed=0,
        )
        sim = Simulator()
        breaker = CircuitBreaker(
            lambda: sim.now, window_ns=1e6,
            failure_threshold=0.5, min_samples=4, open_ns=5000.0,
        )
        processor = KVProcessor(sim, store)
        client = KVClient(
            sim, processor, batch_size=16, busy_retry_limit=64,
            busy_backoff_ns=200.0, breaker=breaker,
        )
        stats = client.run(_gets(store, count=32))
        assert stats.busy_nacks > 0
        assert stats.breaker_opens == breaker.opens
        assert breaker.opens > 0
        assert len(client.responses) + stats.failed_ops == 32

    def test_metrics_gauges_registered(self):
        budget = RetryBudget()
        sim, store, client = _client_setup(
            overload=OverloadPolicy(queue_depth=1), max_inflight=1,
            batch_size=16, busy_retry_limit=64,
            retry_budget=budget,
        )
        client.breaker = CircuitBreaker(lambda: sim.now)
        registry = client.register_metrics(MetricsRegistry())
        exported = json.loads(registry.to_json())
        for name in (
            "client.busy_nacks",
            "client.busy_retries",
            "client.deadline_expired",
            "client.breaker_state",
            "client.breaker_opens",
            "client.retry_budget_tokens",
        ):
            assert name in exported
        assert exported["client.retry_budget_tokens"] == budget.capacity

    def test_validation(self):
        sim = Simulator()
        store = KVDirectStore.create(memory_size=4 << 20)
        processor = KVProcessor(sim, store)
        with pytest.raises(ConfigurationError):
            KVClient(sim, processor, busy_retry_limit=-1)
        with pytest.raises(ConfigurationError):
            KVClient(sim, processor, busy_backoff_ns=-1.0)
        with pytest.raises(ConfigurationError):
            KVClient(sim, processor, deadline_budget_ns=0.0)


class TestClientDeadlines:
    def test_tight_budget_expires_server_side(self):
        sim, store, client = _client_setup(
            batch_size=8, deadline_budget_ns=60.0, busy_retry_limit=0,
        )
        stats = client.run(_gets(store, count=16))
        assert stats.deadline_expired > 0
        assert stats.deadline_expired == stats.failed_ops

    def test_generous_budget_is_invisible(self):
        sim, store, client = _client_setup(
            batch_size=8, deadline_budget_ns=1e12,
        )
        stats = client.run(_gets(store, count=16))
        assert stats.deadline_expired == 0
        assert stats.failed_ops == 0
        assert len(client.responses) == 16
