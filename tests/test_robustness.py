"""Failure-injection and resource-exhaustion robustness tests."""

import struct

import pytest

from repro.core.operations import KVOperation
from repro.core.processor import KVProcessor
from repro.core.store import KVDirectStore
from repro.core.vector import FETCH_ADD
from repro.errors import AllocationError, CapacityError
from repro.sim import Simulator


def q(*values):
    return struct.pack("<%dq" % len(values), *values)


class TestMemoryExhaustion:
    def _fill_until_full(self, store, value_size=100):
        """Insert non-inline KVs until the allocator gives up."""
        stored = []
        value = b"x" * value_size
        i = 0
        with pytest.raises(CapacityError):
            while True:
                key = b"key%08d" % i
                store.put(key, value)
                stored.append(key)
                i += 1
        return stored, value

    def test_store_survives_out_of_memory(self):
        """After an allocation failure every prior KV is still intact."""
        store = KVDirectStore.create(memory_size=256 << 10)
        stored, value = self._fill_until_full(store)
        assert len(stored) > 100
        for key in stored[:: max(1, len(stored) // 50)]:
            assert store.get(key) == value

    def test_deletes_free_space_for_new_inserts(self):
        store = KVDirectStore.create(memory_size=256 << 10)
        stored, value = self._fill_until_full(store)
        # Free a tenth of the corpus; the space must be reusable.
        victims = stored[:: 10]
        for key in victims:
            assert store.delete(key)
        for i, key in enumerate(victims):
            store.put(b"new%07d" % i, value)
        for i in range(len(victims)):
            assert store.get(b"new%07d" % i) == value

    def test_inline_inserts_survive_slab_exhaustion(self):
        """Running out of slabs must not break inline-path PUTs."""
        store = KVDirectStore.create(memory_size=256 << 10)
        self._fill_until_full(store)
        # Inline KVs need no slab (as long as index slots remain).
        store.put(b"tiny", b"v")
        assert store.get(b"tiny") == b"v"

    def test_timed_pipeline_surfaces_capacity_error(self):
        """The processor propagates allocator failures instead of hanging."""
        sim = Simulator()
        store = KVDirectStore.create(memory_size=128 << 10)
        processor = KVProcessor(sim, store)
        ops = [
            KVOperation.put(b"key%06d" % i, b"x" * 200, seq=i)
            for i in range(2000)
        ]
        events = processor.submit_many(ops)
        with pytest.raises(CapacityError):
            sim.run(sim.all_of(events))


class TestDegenerateWorkloads:
    def test_zero_length_values_everywhere(self):
        store = KVDirectStore.create(memory_size=1 << 20)
        for i in range(500):
            store.put(b"k%04d" % i, b"")
        assert len(store) == 500
        assert all(store.get(b"k%04d" % i) == b"" for i in range(500))

    def test_single_key_hammering(self):
        store = KVDirectStore.create(memory_size=1 << 20)
        store.put(b"hot", q(0))
        for __ in range(1000):
            store.update(b"hot", FETCH_ADD, q(1))
        assert store.get(b"hot") == q(1000)
        # Hammering one key must not leak memory accesses unboundedly.
        assert store.table.get_cost.maximum <= 3

    def test_alternating_grow_shrink_value(self):
        """Repeatedly crossing the inline threshold and slab classes."""
        store = KVDirectStore.create(memory_size=1 << 20)
        sizes = [2, 100, 5, 300, 1, 60, 0, 200]
        for cycle in range(50):
            size = sizes[cycle % len(sizes)]
            store.put(b"morph", b"m" * size)
            assert store.get(b"morph") == b"m" * size
        assert len(store) == 1

    def test_many_distinct_then_all_deleted(self):
        store = KVDirectStore.create(memory_size=1 << 20)
        for i in range(2000):
            store.put(b"k%05d" % i, b"v" * (i % 50))
        for i in range(2000):
            assert store.delete(b"k%05d" % i)
        assert len(store) == 0
        assert list(store.items()) == []
        # Everything returned to the allocator.
        assert store.host_slab.free_bytes() + sum(
            store.allocator.cached_entries(c) * (32 << c) for c in range(5)
        ) > 0


class TestAllocatorPressure:
    def test_interleaved_classes_under_pressure(self):
        """Mixed-size churn near capacity triggers split + merge paths."""
        store = KVDirectStore.create(memory_size=256 << 10)
        sizes = [40, 90, 200, 450]
        live = {}
        failures = 0
        for i in range(3000):
            key = b"k%05d" % (i % 600)
            size = sizes[i % len(sizes)]
            try:
                store.put(key, b"d" * size)
                live[key] = size
            except AllocationError:
                failures += 1
                if key in live:
                    store.delete(key)
                    del live[key]
        # The store remains consistent through any failures.
        for key, size in list(live.items())[::17]:
            assert store.get(key) == b"d" * size
