"""Shard routing: balance, bucket-bit disjointness, and a sharded-server
differential soak against the single dict reference model."""

import pytest

from repro.chaos import SoakConfig, run_soak
from repro.core.hashing import bucket_index, fnv1a64, shard_of
from repro.faults import FaultPlan
from repro.sim import Simulator


KEYS = [b"key%06d" % i for i in range(4000)]

_MASK64 = (1 << 64) - 1


def _finalize(h48):
    """Reference mirror of shard_of's splitmix64-style finalizer."""
    h = ((h48 ^ (h48 >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
    return h ^ (h >> 31)


class TestShardBalance:
    @pytest.mark.parametrize("shards", [2, 4, 10])
    def test_distribution_is_balanced(self, shards):
        counts = [0] * shards
        for key in KEYS:
            counts[shard_of(key, shards)] += 1
        expected = len(KEYS) / shards
        for count in counts:
            # Within 15% of a perfectly uniform split at n=4000.
            assert abs(count - expected) < 0.15 * expected

    @pytest.mark.parametrize("shards", [2, 4, 10])
    def test_sequential_integer_keys_are_balanced(self, shards):
        """KeySpace keys are big-endian sequential integers; raw FNV-1a
        high bits cluster on them badly enough to leave whole shards
        empty - the finalizer must spread them."""
        keys = [i.to_bytes(8, "big") for i in range(4096)]
        counts = [0] * shards
        for key in keys:
            counts[shard_of(key, shards)] += 1
        expected = len(keys) / shards
        for count in counts:
            assert abs(count - expected) < 0.2 * expected
        # Every shard is populated even at a small 512-key corpus (raw
        # FNV-1a high bits left shard 0 entirely empty here).
        small = [0] * shards
        for key in keys[:512]:
            small[shard_of(key, shards)] += 1
        assert min(small) > 0

    def test_stable_and_in_range(self):
        for shards in (1, 2, 4, 10):
            for key in (b"a", b"key", b"x" * 255):
                s = shard_of(key, shards)
                assert 0 <= s < shards
                assert s == shard_of(key, shards)

    def test_matches_published_formula(self):
        for key in KEYS[:64]:
            assert shard_of(key, 7) == _finalize(fnv1a64(key) >> 16) % 7


class TestBucketBitDisjointness:
    def test_shard_ignores_low_sixteen_hash_bits(self):
        """shard_of consumes only bits 16..63 - the bits bucket_index is
        dominated by (power-of-two bucket counts) never reach it."""
        for key in KEYS[:256]:
            h = fnv1a64(key)
            base = _finalize(h >> 16) % 4
            assert shard_of(key, 4) == base
            # Perturbing the low 16 bits cannot change the shard.
            for flip in (0x1, 0xFF, 0xFFFF):
                assert _finalize((h ^ flip) >> 16) % 4 == base

    def test_one_shard_still_covers_all_buckets(self):
        """Conditioning on a shard must not bias the bucket index: shard
        0's keys alone must still reach every one of 64 buckets."""
        buckets = {
            bucket_index(fnv1a64(key), 64)
            for key in KEYS
            if shard_of(key, 4) == 0
        }
        assert buckets == set(range(64))


class TestShardedDifferentialSoak:
    """The chaos-soak checker (independent dict model + reconciliation)
    over a sharded server: N share-nothing stacks, one reference model."""

    def _config(self, shards):
        return SoakConfig(
            seed=11,
            num_shards=shards,
            num_keys=12,
            ops_per_key=25,
            fault_plan=FaultPlan.chaos(0.01),
            deadline_budget_ns=300_000.0,
        )

    def test_sharded_soak_holds_all_invariants(self):
        report = run_soak(self._config(4))
        assert report.check() == []
        assert report.submitted == 12 * 25
        assert report.final_state_matches

    def test_sharded_soak_is_deterministic(self):
        a = run_soak(self._config(4))
        b = run_soak(self._config(4))
        assert a.digest == b.digest
        assert a.as_dict() == b.as_dict()

    def test_shard_counts_change_the_schedule_digest_only_via_faults(self):
        """1-shard and 4-shard runs share the op schedule; both must pass
        the same differential checker independently."""
        single = run_soak(self._config(1))
        sharded = run_soak(self._config(4))
        assert single.check() == []
        assert sharded.check() == []
        assert single.submitted == sharded.submitted

    def test_sharded_metrics_are_namespaced(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        run_soak(self._config(2), registry=registry)
        names = set(registry.collect())
        assert any(n.startswith("nic0.processor") for n in names)
        assert any(n.startswith("nic1.processor") for n in names)
        assert not any(n.startswith("processor") for n in names)


class TestShardRouterEdgeCases:
    """Typed configuration errors instead of silent misrouting."""

    def _stacks(self, n):
        from repro.multi import ServerStack

        sim = Simulator()
        return sim, [
            ServerStack(sim, name=f"nic{i}") for i in range(n)
        ]

    def test_zero_stacks_is_a_typed_error(self):
        from repro.client import ShardRouter
        from repro.errors import ConfigurationError

        sim, __ = self._stacks(0)
        with pytest.raises(ConfigurationError):
            ShardRouter(sim, [])

    def test_empty_op_stream_is_a_typed_error(self):
        from repro.client import ShardRouter
        from repro.errors import ConfigurationError

        sim, stacks = self._stacks(2)
        router = ShardRouter(sim, stacks)
        with pytest.raises(ConfigurationError):
            router.run([])

    def test_single_stack_routes_everything_to_shard_zero(self):
        from repro.client import ShardRouter
        from repro.core.operations import KVOperation

        sim, stacks = self._stacks(1)
        stacks[0].store.put(b"key000000", b"v" * 5)
        router = ShardRouter(sim, stacks)
        ops = [KVOperation.get(b"key000000", seq=i) for i in range(16)]
        assert all(router.shard_of(op.key) == 0 for op in ops)
        stats = router.run(ops)
        assert stats.shards == 1
        assert stats.operations == 16
        assert len(stats.per_shard) == 1

    def test_mutated_stacks_are_refused_not_misrouted(self):
        """Growing router.stacks after construction would make shard_of
        hash keys to clients that do not exist; both lookups and runs
        must fail loudly."""
        from repro.client import ShardRouter
        from repro.core.operations import KVOperation
        from repro.errors import ConfigurationError

        sim, stacks = self._stacks(2)
        router = ShardRouter(sim, stacks)
        sim2, extra = self._stacks(1)
        router.stacks.append(extra[0])
        with pytest.raises(ConfigurationError):
            for i in range(64):
                router.shard_of(b"key%06d" % i)
        with pytest.raises(ConfigurationError):
            router.run([KVOperation.get(b"key000000", seq=0)])


class TestServerStackComposition:
    def test_single_stack_matches_plain_processor_metrics(self):
        """A 1-stack server with prefix '' registers the exact single-NIC
        metric names."""
        from repro.multi import ServerStack

        sim = Simulator()
        stack = ServerStack(sim, name="nic0")
        registry = stack.register_metrics(prefix="")
        names = set(registry.collect())
        assert "processor.completed_ops" in names
        assert "station.occupancy" in names

    def test_multinic_registry_prefixes_every_shard(self):
        from repro.multi import MultiNICServer

        server = MultiNICServer(Simulator(), nic_count=3)
        names = set(server.register_metrics().collect())
        for i in range(3):
            assert f"nic{i}.processor.completed_ops" in names
            assert f"nic{i}.station.occupancy" in names
            assert f"nic{i}.mem.cache_hit_rate" in names
