"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Event, Interrupt, Simulator


class TestEventBasics:
    def test_new_event_is_pending(self):
        sim = Simulator()
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_succeed_carries_value(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(42)
        sim.run()
        assert event.triggered
        assert event.value == 42

    def test_fail_raises_on_value_access(self):
        sim = Simulator()
        event = sim.event()
        event.fail(RuntimeError("boom"))
        sim.run()
        with pytest.raises(RuntimeError, match="boom"):
            __ = event.value

    def test_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_value_before_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        with pytest.raises(SimulationError):
            __ = event.value

    def test_fail_requires_exception_instance(self):
        sim = Simulator()
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_late_callback_runs_inline(self):
        sim = Simulator()
        event = sim.event()
        event.succeed("x")
        sim.run()
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]


class TestTimeout:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        timeout = sim.timeout(150.0)
        sim.run(timeout)
        assert sim.now == pytest.approx(150.0)

    def test_timeout_value(self):
        sim = Simulator()
        timeout = sim.timeout(5.0, value="done")
        assert sim.run(timeout) == "done"

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        timeout = sim.timeout(0.0)
        sim.run(timeout)
        assert sim.now == 0.0


class TestProcess:
    def test_process_runs_to_completion(self):
        sim = Simulator()
        trace = []

        def worker():
            trace.append(("start", sim.now))
            yield sim.timeout(10)
            trace.append(("mid", sim.now))
            yield sim.timeout(5)
            trace.append(("end", sim.now))
            return "result"

        proc = sim.process(worker())
        assert sim.run(proc) == "result"
        assert trace == [("start", 0.0), ("mid", 10.0), ("end", 15.0)]

    def test_processes_interleave_by_time(self):
        sim = Simulator()
        order = []

        def worker(name, delay):
            yield sim.timeout(delay)
            order.append(name)

        sim.process(worker("slow", 20))
        sim.process(worker("fast", 5))
        sim.process(worker("mid", 10))
        sim.run()
        assert order == ["fast", "mid", "slow"]

    def test_process_waits_on_event(self):
        sim = Simulator()
        gate = sim.event()
        results = []

        def waiter():
            value = yield gate
            results.append((value, sim.now))

        def opener():
            yield sim.timeout(30)
            gate.succeed("open")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert results == [("open", 30.0)]

    def test_failed_event_raises_in_process(self):
        sim = Simulator()
        gate = sim.event()
        caught = []

        def waiter():
            try:
                yield gate
            except ValueError as exc:
                caught.append(str(exc))

        def failer():
            yield sim.timeout(1)
            gate.fail(ValueError("nope"))

        sim.process(waiter())
        sim.process(failer())
        sim.run()
        assert caught == ["nope"]

    def test_yield_non_event_is_error(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_nested_processes(self):
        sim = Simulator()

        def inner(n):
            yield sim.timeout(n)
            return n * 2

        def outer():
            a = yield sim.process(inner(5))
            b = yield sim.process(inner(7))
            return a + b

        assert sim.run(sim.process(outer())) == 24
        assert sim.now == pytest.approx(12.0)

    def test_interrupt_wakes_process(self):
        sim = Simulator()
        log = []

        def sleeper():
            try:
                yield sim.timeout(1000)
                log.append("finished")
            except Interrupt as intr:
                log.append(("interrupted", intr.cause, sim.now))

        proc = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(10)
            proc.interrupt("wakeup")

        sim.process(interrupter())
        sim.run(proc)
        assert log == [("interrupted", "wakeup", 10.0)]

    def test_is_alive(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1)

        proc = sim.process(quick())
        assert proc.is_alive
        sim.run(proc)
        assert not proc.is_alive


class TestConditions:
    def test_all_of_collects_values(self):
        sim = Simulator()
        events = [sim.timeout(i, value=i) for i in (3, 1, 2)]
        result = sim.run(sim.all_of(events))
        assert result == [3, 1, 2]
        assert sim.now == pytest.approx(3.0)

    def test_all_of_empty(self):
        sim = Simulator()
        result = sim.run(sim.all_of([]))
        assert result == []

    def test_any_of_first_value(self):
        sim = Simulator()
        events = [sim.timeout(9, value="late"), sim.timeout(2, value="early")]
        result = sim.run(sim.any_of(events))
        assert result == "early"
        assert sim.now == pytest.approx(2.0)


class TestSimulatorRun:
    def test_run_until_time(self):
        sim = Simulator()
        fired = []

        def worker():
            yield sim.timeout(10)
            fired.append(10)
            yield sim.timeout(10)
            fired.append(20)

        sim.process(worker())
        sim.run(until=15.0)
        assert fired == [10]
        assert sim.now == pytest.approx(15.0)
        sim.run()
        assert fired == [10, 20]

    def test_run_until_past_rejected(self):
        sim = Simulator()
        sim.timeout(100)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=50.0)

    def test_deadlock_detected(self):
        sim = Simulator()
        gate = sim.event()

        def waiter():
            yield gate

        proc = sim.process(waiter())
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(proc)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        sim.run(sim.timeout(50))
        event = sim.event()
        sim.schedule_at(event, 120.0, value="later")
        assert sim.run(event) == "later"
        assert sim.now == pytest.approx(120.0)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.run(sim.timeout(10))
        with pytest.raises(SimulationError):
            sim.schedule_at(sim.event(), 5.0)

    def test_peek(self):
        sim = Simulator()
        assert sim.peek() == float("inf")
        sim.timeout(42.0)
        assert sim.peek() == pytest.approx(42.0)

    def test_fifo_order_for_simultaneous_events(self):
        sim = Simulator()
        order = []

        def worker(name):
            yield sim.timeout(10)
            order.append(name)

        for name in "abc":
            sim.process(worker(name))
        sim.run()
        assert order == ["a", "b", "c"]


class TestEdgeCases:
    def test_any_of_failure_propagates(self):
        sim = Simulator()
        good = sim.timeout(10, value="ok")
        bad = sim.event()
        bad.fail(RuntimeError("boom"))
        condition = sim.any_of([good, bad])
        with pytest.raises(RuntimeError):
            sim.run(condition)

    def test_all_of_failure_fails_fast(self):
        sim = Simulator()
        slow = sim.timeout(1000)
        bad = sim.event()
        bad.fail(ValueError("nope"))
        condition = sim.all_of([slow, bad])
        with pytest.raises(ValueError):
            sim.run(condition)
        assert sim.now < 1000

    def test_interrupt_completed_process_is_noop(self):
        sim = Simulator()

        def quick():
            yield sim.timeout(1)

        proc = sim.process(quick())
        sim.run(proc)
        proc.interrupt("late")  # must not raise
        sim.run()

    def test_unhandled_interrupt_ends_process(self):
        sim = Simulator()

        def stubborn():
            yield sim.timeout(1000)

        proc = sim.process(stubborn())
        sim.run(until=1.0)
        proc.interrupt("stop")
        sim.run(proc)
        assert not proc.is_alive

    def test_process_exception_propagates_to_waiter(self):
        sim = Simulator()

        def broken():
            yield sim.timeout(1)
            raise KeyError("inner")

        def outer():
            try:
                yield sim.process(broken())
            except KeyError as exc:
                return f"caught {exc}"

        assert "caught" in sim.run(sim.process(outer()))

    def test_run_until_event_value(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(5)
            return {"answer": 42}

        result = sim.run(sim.process(worker()))
        assert result == {"answer": 42}
