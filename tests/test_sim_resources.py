"""Unit tests for token pools, bandwidth servers and pipeline stages."""

import pytest

from repro.errors import SimulationError
from repro.sim import BandwidthServer, FIFOServer, Simulator, Store, TokenPool


class TestTokenPool:
    def test_acquire_within_capacity_is_immediate(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=3)
        grants = []

        def worker(i):
            yield pool.acquire()
            grants.append((i, sim.now))

        for i in range(3):
            sim.process(worker(i))
        sim.run()
        assert [g[1] for g in grants] == [0.0, 0.0, 0.0]
        assert pool.in_use == 3

    def test_acquire_blocks_until_release(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=1)
        log = []

        def holder():
            yield pool.acquire()
            yield sim.timeout(100)
            pool.release()

        def waiter():
            yield pool.acquire()
            log.append(sim.now)

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        assert log == [100.0]

    def test_fifo_grant_order(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=1)
        order = []

        def holder():
            yield pool.acquire()
            yield sim.timeout(10)
            pool.release()

        def waiter(name):
            yield pool.acquire()
            order.append(name)
            yield sim.timeout(1)
            pool.release()

        sim.process(holder())
        for name in ("first", "second", "third"):
            sim.process(waiter(name))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_try_acquire(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=1)
        assert pool.try_acquire()
        assert not pool.try_acquire()
        pool.release()
        assert pool.try_acquire()

    def test_release_without_acquire_rejected(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=2)
        with pytest.raises(SimulationError):
            pool.release()

    def test_peak_tracking(self):
        sim = Simulator()
        pool = TokenPool(sim, capacity=8)
        for __ in range(5):
            assert pool.try_acquire()
        for __ in range(5):
            pool.release()
        assert pool.peak_in_use == 5
        assert pool.total_acquired == 5
        assert pool.available == 8

    def test_zero_capacity_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            TokenPool(sim, capacity=0)

    def test_conservation_under_churn(self):
        """Tokens are neither created nor destroyed across many handoffs."""
        sim = Simulator()
        pool = TokenPool(sim, capacity=4)
        done = []

        def worker(i):
            yield pool.acquire()
            assert 0 <= pool.available <= pool.capacity
            yield sim.timeout(1 + (i % 7))
            pool.release()
            done.append(i)

        for i in range(50):
            sim.process(worker(i))
        sim.run()
        assert len(done) == 50
        assert pool.available == pool.capacity


class TestBandwidthServer:
    def test_single_transfer_time(self):
        sim = Simulator()
        # 1 byte/ns = 1 GB/s
        channel = BandwidthServer(sim, bytes_per_ns=1.0)
        done = channel.transfer(64)
        sim.run(done)
        assert sim.now == pytest.approx(64.0)

    def test_transfers_serialize(self):
        sim = Simulator()
        channel = BandwidthServer(sim, bytes_per_ns=2.0)
        first = channel.transfer(100)  # 50 ns
        second = channel.transfer(100)  # next 50 ns
        sim.run(first)
        assert sim.now == pytest.approx(50.0)
        sim.run(second)
        assert sim.now == pytest.approx(100.0)

    def test_idle_gap_not_charged(self):
        sim = Simulator()
        channel = BandwidthServer(sim, bytes_per_ns=1.0)
        sim.run(channel.transfer(10))
        sim.run(sim.timeout(90))  # idle until t=100
        done = channel.transfer(10)
        sim.run(done)
        assert sim.now == pytest.approx(110.0)

    def test_from_bytes_per_sec(self):
        sim = Simulator()
        channel = BandwidthServer.from_bytes_per_sec(sim, 5e9)  # 5 GB/s
        sim.run(channel.transfer(5000))
        assert sim.now == pytest.approx(1000.0)  # 5000 B at 5 B/ns

    def test_accounting(self):
        sim = Simulator()
        channel = BandwidthServer(sim, bytes_per_ns=1.0)
        channel.transfer(30)
        channel.transfer(70)
        sim.run()
        assert channel.bytes_transferred == 100
        assert channel.transfers == 2
        assert channel.utilization() == pytest.approx(1.0)

    def test_queue_delay(self):
        sim = Simulator()
        channel = BandwidthServer(sim, bytes_per_ns=1.0)
        channel.transfer(500)
        assert channel.queue_delay() == pytest.approx(500.0)

    def test_negative_size_rejected(self):
        sim = Simulator()
        channel = BandwidthServer(sim, bytes_per_ns=1.0)
        with pytest.raises(SimulationError):
            channel.transfer(-1)

    def test_zero_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            BandwidthServer(sim, bytes_per_ns=0.0)


class TestFIFOServer:
    def test_initiation_interval_paces_throughput(self):
        sim = Simulator()
        # One item per 5.56 ns = 180 MHz pipeline.
        stage = FIFOServer(sim, initiation_interval_ns=5.0, latency_ns=0.0)
        finish_times = []

        def feed(n):
            events = [stage.submit() for __ in range(n)]
            for event in events:
                yield event
                finish_times.append(sim.now)

        sim.run(sim.process(feed(4)))
        assert finish_times == [
            pytest.approx(5.0),
            pytest.approx(10.0),
            pytest.approx(15.0),
            pytest.approx(20.0),
        ]

    def test_latency_adds_to_exit_time(self):
        sim = Simulator()
        stage = FIFOServer(sim, initiation_interval_ns=1.0, latency_ns=100.0)
        done = stage.submit()
        sim.run(done)
        assert sim.now == pytest.approx(101.0)

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            FIFOServer(sim, initiation_interval_ns=0.0)
        with pytest.raises(SimulationError):
            FIFOServer(sim, initiation_interval_ns=1.0, latency_ns=-1.0)


class TestStore:
    def test_put_then_get(self):
        sim = Simulator()
        store = Store(sim)
        store.put("item")
        assert sim.run(store.get()) == "item"

    def test_get_blocks_until_put(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(25)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 25.0)]

    def test_fifo_ordering(self):
        sim = Simulator()
        store = Store(sim)
        for i in range(5):
            store.put(i)
        results = []

        def consumer():
            for __ in range(5):
                item = yield store.get()
                results.append(item)

        sim.run(sim.process(consumer()))
        assert results == [0, 1, 2, 3, 4]

    def test_len_and_peek(self):
        sim = Simulator()
        store = Store(sim)
        assert len(store) == 0
        assert store.peek() is None
        store.put("x")
        assert len(store) == 1
        assert store.peek() == "x"


class TestLatencyModels:
    def test_constant(self):
        from repro.sim import ConstantLatency

        model = ConstantLatency(100.0)
        assert model.sample() == 100.0
        assert model.mean() == 100.0

    def test_constant_negative_rejected(self):
        from repro.sim import ConstantLatency

        with pytest.raises(ValueError):
            ConstantLatency(-1.0)

    def test_uniform_bounds_and_mean(self):
        from repro.sim import UniformLatency

        model = UniformLatency(800.0, 500.0, seed=1)
        samples = [model.sample() for __ in range(2000)]
        assert all(800.0 <= s <= 1300.0 for s in samples)
        assert abs(sum(samples) / len(samples) - model.mean()) < 20.0

    def test_uniform_deterministic_by_seed(self):
        from repro.sim import UniformLatency

        a = [UniformLatency(0, 10, seed=7).sample() for __ in range(5)]
        b = [UniformLatency(0, 10, seed=7).sample() for __ in range(5)]
        assert a == b

    def test_exponential_tail(self):
        from repro.sim import ExponentialLatency

        model = ExponentialLatency(100.0, 50.0, seed=2)
        samples = [model.sample() for __ in range(2000)]
        assert all(s >= 100.0 for s in samples)
        assert abs(sum(samples) / len(samples) - model.mean()) < 10.0

    def test_exponential_zero_tail(self):
        from repro.sim import ExponentialLatency

        model = ExponentialLatency(100.0, 0.0)
        assert model.sample() == 100.0

    def test_invalid_parameters(self):
        from repro.sim import ExponentialLatency, UniformLatency

        with pytest.raises(ValueError):
            UniformLatency(-1, 10)
        with pytest.raises(ValueError):
            ExponentialLatency(1, -1)
