"""Unit tests for counters, histograms, and running statistics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Counter, Histogram, RunningStats
from repro.sim.stats import gbps, mops, percentile


class TestCounter:
    def test_add_and_get(self):
        counter = Counter()
        counter.add("reads")
        counter.add("reads", 4)
        assert counter.get("reads") == 5
        assert counter["reads"] == 5

    def test_missing_is_zero(self):
        counter = Counter()
        assert counter.get("nothing") == 0
        assert "nothing" not in counter

    def test_reset(self):
        counter = Counter()
        counter.add("x", 10)
        counter.reset()
        assert counter.get("x") == 0

    def test_snapshot_is_copy(self):
        counter = Counter()
        counter.add("x")
        snap = counter.snapshot()
        counter.add("x")
        assert snap == {"x": 1}
        assert counter.get("x") == 2

    def test_record_max_keeps_high_watermark(self):
        counter = Counter()
        counter.record_max("peak", 3)
        counter.record_max("peak", 7)
        counter.record_max("peak", 5)
        assert counter["peak"] == 7

    def test_record_max_on_fresh_key(self):
        counter = Counter()
        counter.record_max("peak", 2)
        assert counter["peak"] == 2
        # Values at or below the floor never regress the watermark.
        counter.record_max("peak", 0)
        assert counter["peak"] == 2

    def test_record_max_first_call_materializes_any_value(self):
        """Regression: the first call must record even 0 or a negative
        level - an idle run reports the gauge at 0, not a missing key."""
        counter = Counter()
        counter.record_max("idle_peak", 0)
        assert "idle_peak" in counter.snapshot()
        assert counter["idle_peak"] == 0
        counter.record_max("level", -3)
        assert counter["level"] == -3
        counter.record_max("level", -1)
        assert counter["level"] == -1


class TestRunningStats:
    def test_mean_min_max(self):
        stats = RunningStats()
        for v in (2.0, 4.0, 6.0):
            stats.record(v)
        assert stats.mean == pytest.approx(4.0)
        assert stats.minimum == 2.0
        assert stats.maximum == 6.0
        assert stats.count == 3

    def test_variance(self):
        stats = RunningStats()
        for v in (1.0, 2.0, 3.0, 4.0):
            stats.record(v)
        assert stats.variance == pytest.approx(1.25)
        assert stats.stddev == pytest.approx(math.sqrt(1.25))

    def test_empty(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0

    def test_merge_matches_combined(self):
        a, b, combined = RunningStats(), RunningStats(), RunningStats()
        for i in range(10):
            a.record(float(i))
            combined.record(float(i))
        for i in range(10, 30):
            b.record(float(i) * 1.5)
            combined.record(float(i) * 1.5)
        a.merge(b)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.minimum == combined.minimum
        assert a.maximum == combined.maximum

    def test_merge_empty_sides(self):
        a, b = RunningStats(), RunningStats()
        a.record(5.0)
        a.merge(b)  # merging empty changes nothing
        assert a.count == 1
        b.merge(a)  # merging into empty copies
        assert b.count == 1
        assert b.mean == 5.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=200))
    def test_mean_matches_naive(self, values):
        stats = RunningStats()
        for v in values:
            stats.record(v)
        assert stats.mean == pytest.approx(sum(values) / len(values), abs=1e-6)


class TestHistogram:
    def test_percentiles_on_known_data(self):
        hist = Histogram()
        hist.extend(range(1, 101))  # 1..100
        assert hist.percentile(0) == 1
        assert hist.percentile(100) == 100
        assert hist.median() == pytest.approx(50.5)
        assert hist.percentile(95) == pytest.approx(95.05)

    def test_single_sample(self):
        hist = Histogram()
        hist.record(7.0)
        assert hist.percentile(0) == 7.0
        assert hist.percentile(50) == 7.0
        assert hist.percentile(100) == 7.0

    def test_empty_errors(self):
        hist = Histogram()
        with pytest.raises(ValueError):
            hist.percentile(50)
        with pytest.raises(ValueError):
            hist.mean()

    def test_empty_min_max_raise_value_error(self):
        # Regression: these used to leak a bare IndexError from the
        # underlying list instead of the ValueError the rest of the
        # empty-histogram surface raises.
        hist = Histogram()
        with pytest.raises(ValueError, match="empty histogram"):
            hist.min()
        with pytest.raises(ValueError, match="empty histogram"):
            hist.max()

    def test_out_of_range_pct(self):
        hist = Histogram()
        hist.record(1.0)
        with pytest.raises(ValueError):
            hist.percentile(101)
        with pytest.raises(ValueError):
            hist.percentile(-1)

    def test_record_after_percentile(self):
        hist = Histogram()
        hist.extend([3.0, 1.0])
        assert hist.min() == 1.0
        hist.record(0.5)
        assert hist.min() == 0.5

    def test_summary_keys(self):
        hist = Histogram()
        hist.extend(float(i) for i in range(200))
        summary = hist.summary()
        assert set(summary) == {
            "count", "mean", "min", "p5", "p50", "p95", "p99", "max",
        }
        assert summary["count"] == 200.0

    def test_cdf_monotone(self):
        hist = Histogram()
        hist.extend([5.0, 1.0, 3.0, 2.0, 4.0] * 10)
        points = hist.cdf(points=20)
        values = [v for v, __ in points]
        fractions = [f for __, f in points]
        assert values == sorted(values)
        assert fractions == sorted(fractions)
        assert fractions[-1] == pytest.approx(1.0)

    @given(
        st.lists(
            st.floats(0, 1e9, allow_subnormal=False),
            min_size=1,
            max_size=300,
        )
    )
    def test_percentile_bounds(self, values):
        hist = Histogram()
        hist.extend(values)
        p50 = hist.percentile(50)
        assert min(values) <= p50 <= max(values)

    @given(
        st.lists(
            st.floats(0, 1e6, allow_subnormal=False),
            min_size=2,
            max_size=100,
        ),
        st.floats(0, 100),
    )
    def test_percentile_monotone_in_pct(self, values, pct):
        hist = Histogram()
        hist.extend(values)
        assert hist.percentile(pct) <= hist.percentile(100)
        assert hist.percentile(0) <= hist.percentile(pct)


class TestRates:
    def test_mops(self):
        # 1000 ops in 1000 ns = 1 Gops = 1000 Mops
        assert mops(1000, 1000.0) == pytest.approx(1000.0)
        # 180 ops in 1000 ns = 180 Mops
        assert mops(180, 1000.0) == pytest.approx(180.0)

    def test_mops_zero_time(self):
        assert mops(100, 0.0) == 0.0

    def test_gbps(self):
        # 64 bytes in 8 ns = 8 GB/s
        assert gbps(64, 8.0) == pytest.approx(8.0)

    def test_percentile_helper(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0


class TestHistogramCdf:
    def test_cdf_spans_samples(self):
        hist = Histogram()
        hist.extend(float(i) for i in range(1, 101))
        points = hist.cdf(points=10)
        assert len(points) == 10
        values = [v for v, __ in points]
        assert values[0] <= 15.0
        assert values[-1] == 100.0

    def test_cdf_empty(self):
        assert Histogram().cdf() == []

    def test_summary_consistent_with_percentiles(self):
        hist = Histogram()
        hist.extend(float(i) for i in range(1000))
        summary = hist.summary()
        assert summary["p50"] == hist.percentile(50)
        assert summary["min"] <= summary["p5"] <= summary["p95"] <= summary["max"]
