"""Unit tests for the slab allocator (NIC cache + host daemon)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.slab import SlabAllocator
from repro.core.slab_host import (
    NUM_CLASSES,
    AllocationBitmap,
    HostSlabManager,
    class_for_size,
    class_size,
    radix_sort,
)
from repro.errors import AllocationError, ConfigurationError


class TestSizeClasses:
    def test_class_sizes(self):
        assert [class_size(i) for i in range(NUM_CLASSES)] == [
            32, 64, 128, 256, 512,
        ]

    def test_class_for_size(self):
        assert class_for_size(1) == 0
        assert class_for_size(32) == 0
        assert class_for_size(33) == 1
        assert class_for_size(512) == 4

    def test_oversize_rejected(self):
        with pytest.raises(AllocationError):
            class_for_size(513)

    def test_nonpositive_rejected(self):
        with pytest.raises(AllocationError):
            class_for_size(0)


class TestAllocationBitmap:
    def test_mark_and_query(self):
        bitmap = AllocationBitmap(100)
        assert bitmap.is_free(10, 5)
        bitmap.mark_allocated(10, 5)
        assert not bitmap.is_free(10, 5)
        assert not bitmap.is_free(12)
        bitmap.mark_free(10, 5)
        assert bitmap.is_free(10, 5)

    def test_free_units(self):
        bitmap = AllocationBitmap(64)
        bitmap.mark_allocated(0, 16)
        assert bitmap.free_units() == 48

    def test_bounds(self):
        bitmap = AllocationBitmap(10)
        with pytest.raises(IndexError):
            bitmap.mark_allocated(8, 4)


class TestHostSlabManager:
    def test_initial_carving(self):
        host = HostSlabManager(base=0, size=4096)
        assert host.pool_sizes()[NUM_CLASSES - 1] == 8
        assert host.free_bytes() == 4096

    def test_pop_marks_allocated(self):
        host = HostSlabManager(base=0, size=1024)
        entries = host.pop(NUM_CLASSES - 1, 1)
        assert len(entries) == 1
        assert not host.bitmap.is_free(entries[0] // 32, 16)

    def test_split_cascades(self):
        host = HostSlabManager(base=0, size=512)
        entries = host.pop(0, 1)  # needs 512 -> 256 -> ... -> 32 splits
        assert len(entries) == 1
        sizes = host.pool_sizes()
        assert sizes[0] == 1  # the buddy 32 B slab
        assert sizes[1] == 1 and sizes[2] == 1 and sizes[3] == 1

    def test_push_returns_to_pool(self):
        host = HostSlabManager(base=0, size=1024)
        entries = host.pop(4, 2)
        host.push(4, entries)
        assert host.free_bytes() == 1024

    def test_out_of_memory(self):
        host = HostSlabManager(base=0, size=512)
        host.pop(4, 1)
        with pytest.raises(AllocationError):
            host.pop(4, 1)

    def test_region_too_small(self):
        with pytest.raises(ConfigurationError):
            HostSlabManager(base=0, size=256)

    def test_misaligned_base(self):
        with pytest.raises(ConfigurationError):
            HostSlabManager(base=17, size=1024)

    def test_nonzero_base_addresses(self):
        host = HostSlabManager(base=4096, size=1024)
        entries = host.pop(4, 2)
        assert all(addr >= 4096 for addr in entries)


class TestMerging:
    def _fragment(self, host):
        """Pop everything as 32 B slabs, then free them all."""
        taken = []
        while True:
            try:
                taken.extend(host.pop(0, 16))
            except AllocationError:
                break
        host.push(0, taken)
        return len(taken)

    def test_radix_merge_restores_large_slabs(self):
        host = HostSlabManager(base=0, size=2048)
        count = self._fragment(host)
        assert count == 64
        host.merge_free_slabs(method="radix")
        assert host.pool_sizes()[NUM_CLASSES - 1] == 4
        assert host.free_bytes() == 2048

    def test_bitmap_merge_restores_large_slabs(self):
        host = HostSlabManager(base=0, size=2048)
        self._fragment(host)
        host.merge_free_slabs(method="bitmap")
        assert host.pool_sizes()[NUM_CLASSES - 1] == 4
        assert host.free_bytes() == 2048

    def test_methods_agree(self):
        host_a = HostSlabManager(base=0, size=4096)
        host_b = HostSlabManager(base=0, size=4096)
        for host in (host_a, host_b):
            taken = host.pop(0, 7)
            host.push(0, taken[:5])  # keep 2 allocated: partial merge only
        host_a.merge_free_slabs(method="radix")
        host_b.merge_free_slabs(method="bitmap")
        assert host_a.free_bytes() == host_b.free_bytes()

    def test_merge_respects_allocated_holes(self):
        host = HostSlabManager(base=0, size=512)
        entries = host.pop(0, 4)  # 4 x 32 B
        host.push(0, entries[1:])  # keep entries[0] allocated
        host.merge_free_slabs(method="radix")
        # The hole prevents full recombination back to one 512 B slab.
        assert host.pool_sizes()[NUM_CLASSES - 1] == 0

    def test_allocation_after_merge(self):
        host = HostSlabManager(base=0, size=1024)
        self._fragment(host)
        # pop(4) forces refill -> merge path internally.
        entries = host.pop(4, 1)
        assert len(entries) == 1

    def test_unknown_method(self):
        host = HostSlabManager(base=0, size=512)
        with pytest.raises(ValueError):
            host.merge_free_slabs(method="quantum")


class TestRadixSort:
    def test_sorts(self):
        values = np.array([5, 3, 9, 1, 1, 0, 255, 256], dtype=np.int64)
        out = radix_sort(values)
        assert list(out) == sorted(values.tolist())

    def test_empty(self):
        assert len(radix_sort(np.array([], dtype=np.int64))) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            radix_sort(np.array([-1], dtype=np.int64))

    @given(st.lists(st.integers(0, 2**40), max_size=200))
    @settings(max_examples=50)
    def test_matches_sorted(self, values):
        arr = np.array(values, dtype=np.int64)
        assert list(radix_sort(arr)) == sorted(values)


class TestSlabAllocator:
    def _allocator(self, size=64 * 1024, batch=8, capacity=32):
        host = HostSlabManager(base=0, size=size)
        return SlabAllocator(host, sync_batch=batch, stack_capacity=capacity)

    def test_alloc_free_roundtrip(self):
        alloc = self._allocator()
        addr = alloc.alloc(100)  # -> 128 B class
        assert addr % 32 == 0
        alloc.free_size(addr, 100)
        assert alloc.counters["allocs"] == 1
        assert alloc.counters["frees"] == 1

    def test_distinct_addresses(self):
        alloc = self._allocator()
        addrs = {alloc.alloc(64) for __ in range(100)}
        assert len(addrs) == 100

    def test_reuse_after_free(self):
        alloc = self._allocator()
        addr = alloc.alloc(32)
        alloc.free(addr, 0)
        assert alloc.alloc(32) == addr  # LIFO stack reuses the hot entry

    def test_amortized_dma_below_paper_bound(self):
        """Section 3.3.2: < 0.1 amortized DMA per allocation."""
        alloc = self._allocator(size=1 << 20, batch=32, capacity=256)
        addrs = [alloc.alloc(64) for __ in range(2000)]
        for addr in addrs:
            alloc.free(addr, 1)
        assert alloc.amortized_dma_per_op() < 0.1

    def test_sync_read_on_empty_stack(self):
        alloc = self._allocator(batch=4)
        alloc.alloc(32)
        assert alloc.counters["sync_reads"] == 1
        # Next 3 allocs come from the cached batch.
        for __ in range(3):
            alloc.alloc(32)
        assert alloc.counters["sync_reads"] == 1

    def test_sync_write_on_overfull_stack(self):
        alloc = self._allocator(batch=4, capacity=8)
        addrs = [alloc.alloc(32) for __ in range(16)]
        for addr in addrs:
            alloc.free(addr, 0)
        assert alloc.counters["sync_writes"] >= 1

    def test_exhaustion_raises(self):
        alloc = self._allocator(size=512, batch=2)
        with pytest.raises(AllocationError):
            for __ in range(100):
                alloc.alloc(512)

    def test_invalid_config(self):
        host = HostSlabManager(base=0, size=1024)
        with pytest.raises(ConfigurationError):
            SlabAllocator(host, sync_batch=0)
        with pytest.raises(ConfigurationError):
            SlabAllocator(host, sync_batch=32, stack_capacity=16)

    def test_bad_free_class(self):
        alloc = self._allocator()
        with pytest.raises(AllocationError):
            alloc.free(0, 9)

    @given(st.lists(st.integers(1, 512), min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_no_double_allocation_property(self, sizes):
        """Live allocations never overlap, for any allocation pattern."""
        alloc = self._allocator(size=1 << 20)
        live = {}
        for i, size in enumerate(sizes):
            addr = alloc.alloc(size)
            cls = class_for_size(size)
            span = class_size(cls)
            for other_addr, other_span in live.items():
                assert addr + span <= other_addr or other_addr + other_span <= addr
            live[addr] = span
            if i % 3 == 2:  # free every third allocation
                victim = next(iter(live))
                alloc.free_size(victim, live.pop(victim))
