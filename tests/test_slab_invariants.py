"""Slab allocator invariants under randomized alloc/free storms.

Three families of guarantees:

- **No double allocation**: no address is ever live twice, and no two live
  slabs of any class overlap in the dynamic area.
- **Free validation**: double frees, frees of never-allocated addresses,
  and frees with the wrong size class are rejected with
  :class:`~repro.errors.AllocationError` and do not corrupt the pools.
- **Exact reclamation**: after freeing everything, flushing the NIC
  stacks, and lazily merging, the host pools account for every free unit -
  the same free-slab counts as a virgin region
  (:meth:`~repro.core.slab_host.HostSlabManager.check_invariants` plus
  byte-exact pool comparison).
"""

import random

import pytest

from repro.core.slab import SlabAllocator
from repro.core.slab_host import (
    NUM_CLASSES,
    HostSlabManager,
    class_size,
)
from repro.errors import AllocationError


def make_allocator(size=1 << 20, base=0, **kwargs):
    host = HostSlabManager(base=base, size=size)
    return host, SlabAllocator(host, **kwargs)


def baseline_pools(size=1 << 20, base=0):
    """Pool sizes and free bytes of a virgin region."""
    host = HostSlabManager(base=base, size=size)
    return host.pool_sizes(), host.free_bytes()


class TestNoDoubleAllocation:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_live_slabs_never_overlap(self, seed):
        """Random storm: every live address is unique and no two live
        slabs' byte ranges intersect at any point in time."""
        rng = random.Random(seed)
        host, allocator = make_allocator()
        live = {}  # addr -> class
        for step in range(3000):
            if live and rng.random() < 0.45:
                addr = rng.choice(list(live))
                allocator.free(addr, live.pop(addr))
            else:
                class_index = rng.randrange(NUM_CLASSES)
                addr = allocator.alloc_class(class_index)
                assert addr not in live, f"step {step}: double allocation"
                live[addr] = class_index
            assert allocator.live_allocations == len(live)
        spans = sorted(
            (addr, addr + class_size(c)) for addr, c in live.items()
        )
        for (a_start, a_end), (b_start, __) in zip(spans, spans[1:]):
            assert a_end <= b_start, "live slabs overlap"

    def test_alloc_respects_class_size(self):
        __, allocator = make_allocator()
        for nbytes, want_class in ((1, 0), (32, 0), (33, 1), (512, 4)):
            addr = allocator.alloc(nbytes)
            assert allocator.is_live(addr)
            allocator.free(addr, want_class)


class TestFreeValidation:
    def test_double_free_rejected(self):
        __, allocator = make_allocator()
        addr = allocator.alloc_class(0)
        allocator.free(addr, 0)
        with pytest.raises(AllocationError):
            allocator.free(addr, 0)
        assert allocator.counters["rejected_frees"] == 1

    def test_foreign_address_rejected(self):
        __, allocator = make_allocator()
        with pytest.raises(AllocationError):
            allocator.free(0x40, 0)

    def test_class_mismatch_rejected_and_slab_stays_live(self):
        __, allocator = make_allocator()
        addr = allocator.alloc_class(2)
        with pytest.raises(AllocationError):
            allocator.free(addr, 1)
        assert allocator.is_live(addr)  # rejection must not consume it
        allocator.free(addr, 2)  # the correct free still works
        assert not allocator.is_live(addr)

    def test_bad_class_index_rejected(self):
        __, allocator = make_allocator()
        addr = allocator.alloc_class(0)
        with pytest.raises(AllocationError):
            allocator.free(addr, NUM_CLASSES)
        assert allocator.is_live(addr)

    def test_rejected_frees_do_not_corrupt_pools(self):
        """After a burst of invalid frees the allocator still round-trips
        to the exact virgin pool state."""
        host, allocator = make_allocator()
        addrs = [allocator.alloc_class(1) for __ in range(20)]
        for addr in addrs[:5]:
            with pytest.raises(AllocationError):
                allocator.free(addr, 3)  # wrong class
        with pytest.raises(AllocationError):
            allocator.free(0x12345 * 32, 1)  # never allocated
        for addr in addrs:
            allocator.free(addr, 1)
        allocator.flush()
        host.merge_free_slabs()
        host.check_invariants()
        want_pools, want_bytes = baseline_pools()
        assert host.pool_sizes() == want_pools
        assert host.free_bytes() == want_bytes


class TestExactReclamation:
    @pytest.mark.parametrize("seed,method", [
        (0, "radix"), (1, "radix"), (2, "bitmap"), (3, "bitmap"),
    ])
    def test_storm_then_full_free_restores_virgin_pools(self, seed, method):
        """Alloc/free storm, free everything, flush, lazily merge: the
        host must report exactly the virgin free-slab counts."""
        rng = random.Random(seed)
        host, allocator = make_allocator()
        live = {}
        for __ in range(4000):
            if live and rng.random() < 0.5:
                addr = rng.choice(list(live))
                allocator.free(addr, live.pop(addr))
            else:
                class_index = rng.randrange(NUM_CLASSES)
                live[allocator.alloc_class(class_index)] = class_index
        for addr, class_index in list(live.items()):
            allocator.free(addr, class_index)
        assert allocator.live_allocations == 0
        allocator.flush()
        host.merge_free_slabs(method=method)
        host.check_invariants()
        want_pools, want_bytes = baseline_pools()
        assert host.free_bytes() == want_bytes
        assert host.pool_sizes() == want_pools

    def test_check_invariants_catches_leak(self):
        """The invariant check is not vacuous: hiding a free slab from the
        pools trips the exact-accounting assertion."""
        host, __ = make_allocator()
        host.pools[NUM_CLASSES - 1].pop()
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            host.check_invariants()

    def test_check_invariants_catches_double_pooling(self):
        host, __ = make_allocator()
        host.pools[NUM_CLASSES - 1].append(
            host.pools[NUM_CLASSES - 1][0]
        )
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            host.check_invariants()

    def test_partial_frees_account_exactly(self):
        """With some slabs still live, pooled + live bytes == region."""
        host, allocator = make_allocator()
        live = {}
        rng = random.Random(7)
        for __ in range(500):
            class_index = rng.randrange(NUM_CLASSES)
            live[allocator.alloc_class(class_index)] = class_index
        for addr in list(live)[::2]:
            allocator.free(addr, live.pop(addr))
        allocator.flush()
        host.check_invariants()
        live_bytes = sum(class_size(c) for c in live.values())
        assert host.free_bytes() + live_bytes == host.size
