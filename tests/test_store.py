"""Unit tests for the public KVDirectStore API."""

import struct

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import KVDirectConfig, KVDirectStore
from repro.core.operations import KVOperation, OpType
from repro.core.vector import (
    COMPARE_AND_SWAP,
    FETCH_ADD,
    FILTER_NONZERO,
    FuncKind,
    REDUCE_SUM,
)
from repro.errors import ConfigurationError, KVDirectError


def q(*values):
    return struct.pack("<%dq" % len(values), *values)


@pytest.fixture
def store():
    return KVDirectStore.create(memory_size=4 << 20)


class TestLifecycle:
    def test_create_defaults(self):
        store = KVDirectStore.create()
        assert store.config.memory_size == 64 << 20
        assert len(store) == 0

    def test_create_with_overrides(self):
        store = KVDirectStore.create(
            memory_size=1 << 20, hash_index_ratio=0.25, inline_threshold=10
        )
        assert store.config.hash_index_ratio == 0.25
        assert store.table.inline_threshold == 10

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            KVDirectConfig(memory_size=100)
        with pytest.raises(ConfigurationError):
            KVDirectConfig(hash_index_ratio=0.0)
        with pytest.raises(ConfigurationError):
            KVDirectConfig(load_dispatch_ratio=2.0)

    def test_paper_scale_geometry(self):
        config = KVDirectConfig.paper_scale()
        assert config.memory_size == 64 * 1024**3
        assert config.effective_nic_dram == 4 * 1024**3
        # 64 GiB at ratio 0.5 -> 0.5 GiBuckets
        assert config.num_buckets == 64 * 1024**3 // 2 // 64

    def test_config_with_overrides(self):
        config = KVDirectConfig().with_overrides(inline_threshold=10)
        assert config.inline_threshold == 10
        assert config.memory_size == KVDirectConfig().memory_size


class TestCrud(object):
    def test_put_get_delete(self, store):
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
        assert b"k" in store
        assert store.delete(b"k")
        assert store.get(b"k") is None

    def test_len(self, store):
        for i in range(10):
            store.put(b"k%d" % i, b"v")
        assert len(store) == 10

    def test_items(self, store):
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        assert dict(store.items()) == {b"a": b"1", b"b": b"2"}


class TestAtomics:
    def test_fetch_add_sequencer(self, store):
        """Section 3.2: sequencers are single-key atomics."""
        store.put(b"seq", q(0))
        tickets = [store.update(b"seq", FETCH_ADD, q(1)) for __ in range(10)]
        assert [struct.unpack("<q", t)[0] for t in tickets] == list(range(10))
        assert store.get(b"seq") == q(10)

    def test_cas(self, store):
        store.put(b"lock", q(0))
        old = store.update(b"lock", COMPARE_AND_SWAP, q(0, 1))
        assert old == q(0)
        old = store.update(b"lock", COMPARE_AND_SWAP, q(0, 2))
        assert old == q(1)  # CAS failed, value unchanged
        assert store.get(b"lock") == q(1)

    def test_update_missing_key(self, store):
        assert store.update(b"ghost", FETCH_ADD, q(1)) is None


class TestVectorOps:
    def test_update_vector(self, store):
        store.put(b"vec", q(1, 2, 3))
        old = store.update_vector(b"vec", FETCH_ADD, q(10))
        assert old == q(1, 2, 3)
        assert store.get(b"vec") == q(11, 12, 13)

    def test_update_vector2vector(self, store):
        store.put(b"vec", q(1, 2, 3))
        old = store.update_vector2vector(b"vec", FETCH_ADD, q(1, 2, 3))
        assert old == q(1, 2, 3)
        assert store.get(b"vec") == q(2, 4, 6)

    def test_reduce(self, store):
        store.put(b"vec", q(1, 2, 3, 4))
        assert store.reduce(b"vec", REDUCE_SUM, q(0)) == q(10)
        # Reduce must not modify the stored vector.
        assert store.get(b"vec") == q(1, 2, 3, 4)

    def test_filter(self, store):
        store.put(b"vec", q(0, 5, 0, 7))
        assert store.filter(b"vec", FILTER_NONZERO) == q(5, 7)
        assert store.get(b"vec") == q(0, 5, 0, 7)

    def test_pagerank_neighbor_accumulation(self, store):
        """Section 3.2: vector reduce supports PageRank weight accumulation."""
        store.put(b"node7:weights", q(3, 1, 4, 1, 5))
        total = store.reduce(b"node7:weights", REDUCE_SUM, q(0))
        assert struct.unpack("<q", total)[0] == 14

    def test_user_defined_function(self, store):
        """Section 3.2: user-defined update functions (active messages)."""
        clamp = store.register_function(
            FuncKind.UPDATE, lambda v, d: min(v, d), name="clamp"
        )
        store.put(b"vec", q(5, 100, 7))
        store.update_vector(b"vec", clamp, q(10))
        assert store.get(b"vec") == q(5, 10, 7)


class TestExecuteWireOps:
    def test_execute_roundtrip(self, store):
        put = KVOperation.put(b"k", b"v", seq=7)
        result = store.execute(put)
        assert result.ok and result.seq == 7
        get = KVOperation.get(b"k", seq=8)
        result = store.execute(get)
        assert result.value == b"v" and result.seq == 8

    def test_execute_missing_get(self, store):
        result = store.execute(KVOperation.get(b"nope"))
        assert not result.ok and not result.found

    def test_execute_delete(self, store):
        store.put(b"k", b"v")
        assert store.execute(KVOperation.delete(b"k")).ok
        assert not store.execute(KVOperation.delete(b"k")).ok

    def test_execute_function_op(self, store):
        store.put(b"ctr", q(41))
        result = store.execute(
            KVOperation(OpType.UPDATE_SCALAR, b"ctr", func_id=FETCH_ADD,
                        param=q(1))
        )
        assert result.value == q(41)
        assert store.get(b"ctr") == q(42)


class TestFillAndMeasure:
    def test_fill_to_utilization(self, store):
        count = store.fill_to_utilization(0.2, kv_size=32)
        assert count > 0
        assert store.utilization() >= 0.2

    def test_fill_validates(self, store):
        with pytest.raises(KVDirectError):
            store.fill_to_utilization(1.5, kv_size=32)
        with pytest.raises(KVDirectError):
            store.fill_to_utilization(0.5, kv_size=4, key_size=8)

    def test_dma_stats_shape(self, store):
        store.put(b"k", b"v")
        store.get(b"k")
        stats = store.dma_stats()
        assert stats["memory_accesses"] >= 3
        assert stats["get_mean_accesses"] == 1.0
        assert stats["put_mean_accesses"] == 2.0
        assert stats["slab_amortized_dma_per_op"] == 0.0  # inline only

    def test_reset_measurements_keeps_data(self, store):
        store.put(b"k", b"v")
        store.reset_measurements()
        assert store.dma_stats()["memory_accesses"] == 0
        assert store.get(b"k") == b"v"


class TestForwardingConsistency:
    """The OoO forwarding executor and the store must agree exactly."""

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["get", "put", "delete", "add"]),
                st.integers(0, 3),
                st.integers(-100, 100),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_forwarded_equals_direct(self, commands):
        direct = KVDirectStore.create(memory_size=1 << 20)
        executor = direct.forwarding_executor()
        shadow = {}  # key -> value bytes, maintained via the executor
        for action, key_index, operand in commands:
            key = b"key%d" % key_index
            if action == "get":
                op = KVOperation.get(key)
            elif action == "put":
                op = KVOperation.put(key, q(operand))
            elif action == "delete":
                op = KVOperation.delete(key)
            else:
                op = KVOperation.update(key, FETCH_ADD, q(operand))
            direct_result = direct.execute(op)
            new_value, fwd_result = executor(op, shadow.get(key))
            if new_value is None:
                shadow.pop(key, None)
            else:
                shadow[key] = new_value
            assert direct_result.ok == fwd_result.ok
            assert direct_result.value == fwd_result.value
        for key, value in shadow.items():
            assert direct.get(key) == value


class TestKeysIterator:
    def test_keys(self, store):
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        assert sorted(store.keys()) == [b"a", b"b"]

    def test_keys_empty(self, store):
        assert list(store.keys()) == []
