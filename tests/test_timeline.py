"""Tests for the simulated-time telemetry timeline + flight recorder.

Covers the :class:`~repro.obs.timeline.TimelineSampler` contract
(windowed deltas, byte-identical JSONL, pure-observer default-off), the
:class:`~repro.obs.timeline.FlightRecorder` anomaly dumps, the cluster
failover timeline, the Chrome trace export, and the
``tools/check_timeline.py`` linter.
"""

import importlib.util
import json
import pathlib

import pytest

from repro.client.router import ClusterRouter
from repro.core.config import KVDirectConfig
from repro.core.operations import KVOperation
from repro.core.processor import KVProcessor
from repro.core.store import KVDirectStore
from repro.driver import run_closed_loop
from repro.errors import ConfigurationError
from repro.multi import Cluster, MultiNICServer
from repro.obs import FlightRecorder, TimelineSampler, Tracer
from repro.obs.timeline import sparkline
from repro.sim import Simulator
from repro.workloads import KeySpace, WorkloadSpec, YCSBGenerator

CORPUS = 256
OPS = 1200
WINDOW_NS = 2000.0


def _single_run(timeline=None, ops=OPS, seed=7):
    """One seeded single-shard closed-loop run."""
    sim = Simulator()
    store = KVDirectStore.create(memory_size=4 << 20, seed=seed)
    keyspace = KeySpace(count=CORPUS, kv_size=13, seed=seed)
    for key, value in keyspace.pairs():
        store.put(key, value)
    store.reset_measurements()
    processor = KVProcessor(sim, store)
    generator = YCSBGenerator(
        keyspace, WorkloadSpec(put_ratio=0.5, seed=seed)
    )
    if timeline is not None:
        timeline.bind(sim)
        timeline.attach_processor("nic0", processor)
    stats = run_closed_loop(
        processor, generator.operations(ops), timeline=timeline
    )
    return processor, stats


def _sharded_run(timeline=None, shards=4, ops=OPS, seed=7):
    """One seeded multi-NIC closed-loop run."""
    sim = Simulator()
    server = MultiNICServer(
        sim, nic_count=shards,
        config=KVDirectConfig(memory_size=4 << 20, seed=seed),
    )
    keyspace = KeySpace(count=CORPUS, kv_size=13, seed=seed)
    for key, value in keyspace.pairs():
        server.put_direct(key, value)
    for stack in server.stacks:
        stack.store.reset_measurements()
    generator = YCSBGenerator(
        keyspace, WorkloadSpec(put_ratio=0.5, seed=seed)
    )
    if timeline is not None:
        server.attach_timeline(timeline)
    stats = server.run_closed_loop(
        list(generator.operations(ops)), timeline=timeline
    )
    return server, stats


def _cluster_kill_run(timeline=None, recorder=None, ops=900, seed=0):
    """A replicated cluster run that kills the primary mid-run."""
    sim = Simulator()
    cluster = Cluster(
        sim, num_nodes=3, config=KVDirectConfig(memory_size=4 << 20),
    )
    keys = [b"key%06d" % i for i in range(CORPUS)]
    for key in keys:
        cluster.preload(key, b"v" * 13)
    workload = [
        KVOperation.put(key, b"w" * 13, seq=i) if i % 3 == 0
        else KVOperation.get(key, seq=i)
        for i, key in enumerate(keys[i % CORPUS] for i in range(ops))
    ]
    target = cluster.map.primary(cluster.map.slot_of(workload[0].key))
    cluster.kill_after_accepts(target, max(1, ops // 9))
    if timeline is not None:
        timeline.bind(sim)
        cluster.attach_timeline(timeline)
        timeline.start()
    stats = ClusterRouter(sim, cluster).run(workload)
    if timeline is not None:
        timeline.finish()
    return cluster, stats


class TestConfiguration:
    def test_window_must_be_positive(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ConfigurationError, match="window"):
                TimelineSampler(window_ns=bad)

    def test_start_requires_simulator(self):
        sampler = TimelineSampler()
        sampler.attach_processor = lambda *a: None  # not reached
        with pytest.raises(ConfigurationError, match="bind"):
            sampler.start()

    def test_start_requires_a_source(self):
        sampler = TimelineSampler(sim=Simulator())
        with pytest.raises(ConfigurationError, match="source"):
            sampler.start()

    def test_attach_after_start_rejected(self):
        sim = Simulator()
        store = KVDirectStore.create(memory_size=4 << 20, seed=1)
        processor = KVProcessor(sim, store)
        sampler = TimelineSampler(sim=sim)
        sampler.attach_processor("nic0", processor)
        sampler.start()
        with pytest.raises(ConfigurationError, match="after start"):
            sampler.attach_processor("nic1", processor)

    def test_recorder_capacities_validated(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(span_capacity=0)
        with pytest.raises(ConfigurationError):
            FlightRecorder(window_capacity=-1)


class TestWindows:
    def test_deltas_sum_to_run_totals(self):
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        processor, stats = _single_run(sampler)
        rows = sampler.rows()
        assert rows, "no windows closed"
        assert all(r["shard"] == "nic0" for r in rows)
        assert sum(r["completed"] for r in rows) == processor.completed
        assert sum(r["completed"] for r in rows) == stats["operations"]
        mem = processor.engine.counters
        assert sum(r["cache_hits"] for r in rows) == mem.get("cache_hits")
        assert sum(r["cache_misses"] for r in rows) == mem.get(
            "cache_misses"
        )

    def test_windows_are_contiguous_and_final_is_partial(self):
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        processor, __ = _single_run(sampler)
        rows = sampler.rows()
        for prev, cur in zip(rows, rows[1:]):
            assert cur["start_ns"] == prev["end_ns"]
            assert cur["window"] == prev["window"] + 1
        # finish() closes the last window at the run's true end, not at
        # the next boundary.
        assert rows[-1]["end_ns"] == processor.sim.now
        assert rows[-1]["end_ns"] - rows[-1]["start_ns"] <= WINDOW_NS

    def test_percentiles_none_only_when_window_empty(self):
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _single_run(sampler)
        for row in sampler.rows():
            if row["completed"] == 0:
                assert row["latency_p50_ns"] is None
            else:
                assert row["latency_p50_ns"] is not None
                assert (
                    row["latency_p50_ns"]
                    <= row["latency_p95_ns"]
                    <= row["latency_p99_ns"]
                )

    def test_cache_hit_rate_null_without_accesses(self):
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _single_run(sampler)
        for row in sampler.rows():
            accesses = row["cache_hits"] + row["cache_misses"]
            if accesses == 0:
                assert row["cache_hit_rate"] is None
            else:
                assert row["cache_hit_rate"] == pytest.approx(
                    row["cache_hits"] / accesses
                )

    def test_throughput_matches_completed_over_elapsed(self):
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _single_run(sampler)
        for row in sampler.rows():
            elapsed = row["end_ns"] - row["start_ns"]
            expected = row["completed"] / elapsed * 1e3 if elapsed else 0.0
            assert row["throughput_mops"] == pytest.approx(expected)


class TestDeterminism:
    def test_single_shard_byte_identical(self):
        first = TimelineSampler(window_ns=WINDOW_NS)
        second = TimelineSampler(window_ns=WINDOW_NS)
        _single_run(first)
        _single_run(second)
        assert first.dumps() == second.dumps()
        assert first.digest() == second.digest()
        assert first.windows > 0

    def test_four_shards_byte_identical_with_aggregate(self):
        first = TimelineSampler(window_ns=WINDOW_NS)
        second = TimelineSampler(window_ns=WINDOW_NS)
        _sharded_run(first)
        _sharded_run(second)
        assert first.dumps() == second.dumps()
        shards = {row["shard"] for row in first.rows()}
        assert shards == {"nic0", "nic1", "nic2", "nic3", "all"}
        assert first.shard_names == ["nic0", "nic1", "nic2", "nic3"]

    def test_aggregate_row_sums_shards(self):
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _sharded_run(sampler)
        by_window = {}
        for row in sampler.rows():
            by_window.setdefault(row["window"], []).append(row)
        for rows in by_window.values():
            agg = [r for r in rows if r["shard"] == "all"]
            shards = [r for r in rows if r["shard"].startswith("nic")]
            assert len(agg) == 1
            assert agg[0]["completed"] == sum(
                r["completed"] for r in shards
            )

    def test_single_shard_has_no_aggregate_row(self):
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _single_run(sampler)
        assert all(r["shard"] == "nic0" for r in sampler.rows())

    def test_lines_are_canonical_json(self):
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _single_run(sampler)
        for line in sampler.lines():
            assert line == json.dumps(json.loads(line), sort_keys=True)


class TestDefaultOff:
    def test_stats_timeline_fields_none_without_sampler(self):
        processor, stats = _single_run(timeline=None, ops=300)
        assert stats["timeline_windows"] is None
        assert stats["timeline_digest"] is None
        assert processor.window_latencies is None

    def test_stats_timeline_fields_set_with_sampler(self):
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        __, stats = _single_run(sampler, ops=300)
        assert stats["timeline_windows"] == float(sampler.windows)
        assert stats["timeline_digest"] == sampler.digest()
        assert len(stats["timeline_digest"]) == 64

    def test_sampler_is_observationally_transparent(self):
        __, plain = _single_run(timeline=None, ops=600)
        __, sampled = _single_run(
            TimelineSampler(window_ns=WINDOW_NS), ops=600
        )
        for key in plain:
            if key.startswith(("wall_clock", "sim_ops_per_wall",
                               "timeline_")):
                continue
            assert sampled[key] == plain[key], key


class TestFlightRecorder:
    def test_rings_hold_only_the_most_recent(self):
        recorder = FlightRecorder(span_capacity=4, window_capacity=2)
        tracer = Tracer(sample_rate=1.0)
        recorder.attach(tracer)
        for i in range(10):
            tracer.emit(i, "ingress")
            recorder.record_window({"window": i})
        assert [span.seq for span in recorder.spans] == [6, 7, 8, 9]
        assert [w["window"] for w in recorder.windows] == [8, 9]

    def test_trigger_snapshots_both_rings(self):
        recorder = FlightRecorder()
        tracer = Tracer(sample_rate=1.0)
        recorder.attach(tracer)
        tracer.emit(0, "ingress")
        recorder.record_window({"window": 0, "completed": 5})
        dump = recorder.trigger("deadline_storm", 1234.0)
        assert dump["reason"] == "deadline_storm"
        assert dump["at_ns"] == 1234.0
        assert len(dump["spans"]) == 1
        assert dump["windows"] == [{"window": 0, "completed": 5}]
        data = json.loads(recorder.dump_json())
        assert [d["reason"] for d in data["dumps"]] == ["deadline_storm"]

    def test_node_kill_triggers_a_dump(self):
        recorder = FlightRecorder()
        sampler = TimelineSampler(window_ns=WINDOW_NS, recorder=recorder)
        _cluster_kill_run(sampler, recorder=recorder)
        reasons = [d["reason"] for d in recorder.dumps]
        assert "node_kill" in reasons
        kill = next(d for d in recorder.dumps if d["reason"] == "node_kill")
        assert kill["windows"], "dump carries the recent metric windows"

    def test_no_dump_without_anomaly(self):
        recorder = FlightRecorder()
        sampler = TimelineSampler(window_ns=WINDOW_NS, recorder=recorder)
        _single_run(sampler, ops=300)
        assert recorder.dumps == []
        assert len(recorder.windows) > 0


class TestClusterTimeline:
    def test_failover_window_visible_and_deterministic(self):
        first = TimelineSampler(window_ns=WINDOW_NS)
        second = TimelineSampler(window_ns=WINDOW_NS)
        cluster, stats = _cluster_kill_run(first)
        _cluster_kill_run(second)
        assert first.dumps() == second.dumps()
        assert cluster.counters.get("failovers") == 1
        rows = first.rows()
        cluster_rows = [r for r in rows if r["shard"] == "cluster"]
        assert cluster_rows[0]["epoch"] == 0
        assert cluster_rows[-1]["epoch"] == 1
        assert min(r["alive_nodes"] for r in cluster_rows) == 2
        assert sum(r["failovers"] for r in cluster_rows) == 1
        assert sum(r["migrated_keys"] for r in cluster_rows) > 0
        # Zero lost acknowledged writes despite the kill.
        assert stats["failed"] == 0

    def test_node_rows_present_alongside_cluster_row(self):
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _cluster_kill_run(sampler)
        shards = {r["shard"] for r in sampler.rows()}
        assert "cluster" in shards
        assert {"node0", "node1", "node2"} <= shards


class TestChromeExport:
    def _traced_single(self):
        sim = Simulator()
        store = KVDirectStore.create(memory_size=4 << 20, seed=3)
        keyspace = KeySpace(count=64, kv_size=13, seed=3)
        for key, value in keyspace.pairs():
            store.put(key, value)
        store.reset_measurements()
        tracer = Tracer(sample_rate=1.0, seed=3)
        processor = KVProcessor(sim, store, tracer=tracer)
        generator = YCSBGenerator(
            keyspace, WorkloadSpec(put_ratio=0.5, seed=3)
        )
        run_closed_loop(processor, generator.operations(200))
        return tracer

    def test_export_is_valid_trace_event_json(self):
        tracer = self._traced_single()
        tracer.annotate("cluster.failover_start", "node0")
        data = json.loads(tracer.export_chrome(shard_names=["nic0"]))
        events = data["traceEvents"]
        assert events
        metas = [e for e in events if e["ph"] == "M"]
        instants = [e for e in events if e["ph"] == "i"]
        assert metas and instants
        assert any(
            e["name"] == "process_name"
            and e["args"]["name"] == "nic0" for e in metas
        )
        assert any(e.get("cat") == "annotation" for e in instants)
        for event in instants:
            assert event["ts"] >= 0.0

    def test_export_is_deterministic(self):
        assert (
            self._traced_single().export_chrome()
            == self._traced_single().export_chrome()
        )


def _load_check_timeline():
    root = pathlib.Path(__file__).resolve().parent.parent
    spec = importlib.util.spec_from_file_location(
        "check_timeline", root / "tools" / "check_timeline.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _timeline_file(tmp_path, sampler, name="t.jsonl"):
    path = tmp_path / name
    path.write_text(
        sampler.dumps()
        + f"# windows={sampler.windows} digest={sampler.digest()}\n"
    )
    return path


class TestCheckTimelineTool:
    def test_clean_file_lints_ok(self, tmp_path):
        check = _load_check_timeline()
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _single_run(sampler, ops=400)
        assert check.lint(_timeline_file(tmp_path, sampler)) == []

    def test_sharded_and_cluster_files_lint_ok(self, tmp_path):
        check = _load_check_timeline()
        sharded = TimelineSampler(window_ns=WINDOW_NS)
        _sharded_run(sharded, ops=400)
        clustered = TimelineSampler(window_ns=WINDOW_NS)
        _cluster_kill_run(clustered)
        assert check.lint(_timeline_file(tmp_path, sharded, "s.jsonl")) == []
        assert check.lint(
            _timeline_file(tmp_path, clustered, "c.jsonl")
        ) == []

    def test_non_canonical_line_flagged(self, tmp_path):
        check = _load_check_timeline()
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _single_run(sampler, ops=400)
        path = _timeline_file(tmp_path, sampler)
        lines = path.read_text().splitlines()
        lines[0] = lines[0].replace('":', '" :', 1)
        path.write_text("\n".join(lines) + "\n")
        problems = check.lint(path)
        assert any("canonical" in p for p in problems)

    def test_bad_digest_flagged(self, tmp_path):
        check = _load_check_timeline()
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _single_run(sampler, ops=400)
        path = tmp_path / "t.jsonl"
        path.write_text(
            sampler.dumps() + f"# windows={sampler.windows} digest={'0' * 64}\n"
        )
        problems = check.lint(path)
        assert any("digest" in p for p in problems)

    def test_trailer_is_optional_but_must_be_well_formed(self, tmp_path):
        check = _load_check_timeline()
        sampler = TimelineSampler(window_ns=WINDOW_NS)
        _single_run(sampler, ops=400)
        bare = tmp_path / "bare.jsonl"
        bare.write_text(sampler.dumps())
        assert check.lint(bare) == []
        malformed = tmp_path / "malformed.jsonl"
        malformed.write_text(sampler.dumps() + "# windows=zero digest=!\n")
        assert any("trailer" in p for p in check.lint(malformed))

    def test_chrome_validation(self, tmp_path):
        check = _load_check_timeline()
        sim = Simulator()
        store = KVDirectStore.create(memory_size=4 << 20, seed=3)
        store.fill_to_utilization(0.2, kv_size=13)
        store.reset_measurements()
        tracer = Tracer(sample_rate=1.0, seed=3)
        processor = KVProcessor(sim, store, tracer=tracer)
        keyspace = KeySpace(count=64, kv_size=13, seed=3)
        for key, value in keyspace.pairs():
            store.put(key, value)
        generator = YCSBGenerator(
            keyspace, WorkloadSpec(put_ratio=0.5, seed=3)
        )
        run_closed_loop(processor, generator.operations(120))
        good = tmp_path / "trace.json"
        good.write_text(tracer.export_chrome() + "\n")
        assert check.lint_chrome(good) == []
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": []}))
        assert check.lint_chrome(bad)


class TestSparkline:
    def test_empty_and_flat_series(self):
        assert sparkline([]) == ""
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_none_renders_as_lowest_bar(self):
        text = sparkline([None, 1.0, 2.0])
        assert text[0] == "▁"
        assert len(text) == 3

    def test_range_maps_to_glyph_extremes(self):
        text = sparkline([0.0, 1.0, 2.0, 3.0])
        assert text[0] == "▁"
        assert text[-1] == "█"
