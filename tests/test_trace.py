"""Tests for operation-trace recording and replay."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.operations import KVOperation, OpType
from repro.core.store import KVDirectStore
from repro.errors import ProtocolError
from repro.workloads.trace import (
    TraceReader,
    TraceWriter,
    load_trace,
    record_trace,
    trace_from_bytes,
    trace_to_bytes,
)


def sample_ops(n=600):
    ops = []
    for i in range(n):
        if i % 3 == 0:
            ops.append(KVOperation.put(b"key%04d" % i, b"v" * (i % 50)))
        elif i % 3 == 1:
            ops.append(KVOperation.get(b"key%04d" % (i - 1)))
        else:
            ops.append(KVOperation.delete(b"key%04d" % (i - 2)))
    return ops


class TestRoundtrip:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "workload.kvdt"
        ops = sample_ops()
        count = record_trace(ops, path)
        assert count == len(ops)
        assert load_trace(path) == ops

    def test_bytes_roundtrip(self):
        ops = sample_ops(100)
        assert trace_from_bytes(trace_to_bytes(ops)) == ops

    def test_empty_trace(self):
        assert trace_from_bytes(trace_to_bytes([])) == []

    def test_spans_multiple_batches(self):
        ops = sample_ops(700)  # > 2 internal batches of 256
        assert trace_from_bytes(trace_to_bytes(ops)) == ops

    def test_streaming_reader(self, tmp_path):
        path = tmp_path / "t.kvdt"
        ops = sample_ops(300)
        record_trace(ops, path)
        streamed = list(TraceReader(path))
        assert streamed == ops

    def test_writer_context_manager_flushes(self, tmp_path):
        path = tmp_path / "t.kvdt"
        with TraceWriter(path) as writer:
            writer.append(KVOperation.get(b"k"))
        assert load_trace(path) == [KVOperation.get(b"k")]

    @given(
        st.lists(
            st.tuples(st.binary(min_size=1, max_size=32),
                      st.binary(max_size=64)),
            max_size=60,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_put_trace_property(self, pairs):
        ops = [KVOperation.put(k, v) for k, v in pairs]
        assert trace_from_bytes(trace_to_bytes(ops)) == ops


class TestCorruption:
    def test_bad_magic(self):
        with pytest.raises(ProtocolError, match="magic"):
            load_trace(io.BytesIO(b"NOPE\x01\x00\x00\x00"))

    def test_bad_version(self):
        with pytest.raises(ProtocolError, match="version"):
            load_trace(io.BytesIO(b"KVDT\x63\x00\x00\x00"))

    def test_truncated_header(self):
        with pytest.raises(ProtocolError, match="header"):
            load_trace(io.BytesIO(b"KV"))

    def test_truncated_frame(self):
        data = trace_to_bytes(sample_ops(10))
        with pytest.raises(ProtocolError):
            trace_from_bytes(data[:-3])


class TestReplay:
    def test_replay_reproduces_state(self, tmp_path):
        """Two stores fed the same trace end in identical states."""
        path = tmp_path / "workload.kvdt"
        record_trace(sample_ops(500), path)

        def run():
            store = KVDirectStore.create(memory_size=1 << 20)
            for op in TraceReader(path):
                store.execute(op)
            return dict(store.items())

        assert run() == run()

    def test_replay_across_configs(self, tmp_path):
        """Config knobs change timing, never semantics."""
        path = tmp_path / "workload.kvdt"
        record_trace(sample_ops(300), path)
        states = []
        for threshold in (0, 20):
            store = KVDirectStore.create(
                memory_size=1 << 20, inline_threshold=threshold
            )
            for op in TraceReader(path):
                store.execute(op)
            states.append(dict(store.items()))
        assert states[0] == states[1]
