"""Unit tests for the parameter-tuning helpers (Figures 6/9/10)."""

import pytest

from repro.core.tuning import (
    MeasuredPoint,
    measure_access_count,
    optimal_hash_index_ratio,
    optimal_inline_threshold,
    sweep_hash_index_ratio,
    sweep_memory_utilization,
)
from repro.errors import CapacityError

MEMORY = 1 << 20


class TestMeasuredPoint:
    def test_mean(self):
        point = MeasuredPoint(0.5, 20, 0.3, get_accesses=1.0, put_accesses=2.0)
        assert point.mean_accesses == 1.5


class TestMeasureAccessCount:
    def test_inline_point(self):
        point = measure_access_count(
            kv_size=13,
            memory_utilization=0.15,
            hash_index_ratio=0.5,
            inline_threshold=20,
            memory_size=MEMORY,
            probe_ops=200,
        )
        assert point is not None
        assert 1.0 <= point.get_accesses < 1.5
        assert 2.0 <= point.put_accesses < 2.5

    def test_noninline_point_pays_extra(self):
        inline = measure_access_count(
            13, 0.15, 0.5, 20, memory_size=MEMORY, probe_ops=200
        )
        offline = measure_access_count(
            30, 0.15, 0.5, 20, memory_size=MEMORY, probe_ops=200
        )
        assert offline.get_accesses > inline.get_accesses + 0.5

    def test_infeasible_returns_none(self):
        assert (
            measure_access_count(
                13, 0.9, 0.9, 20, memory_size=MEMORY, probe_ops=50
            )
            is None
        )

    def test_metadata_echoed(self):
        point = measure_access_count(
            13, 0.1, 0.4, 15, memory_size=MEMORY, probe_ops=100
        )
        assert point.hash_index_ratio == 0.4
        assert point.inline_threshold == 15
        assert point.memory_utilization == 0.1


class TestSweeps:
    def test_ratio_sweep_skips_infeasible(self):
        points = sweep_hash_index_ratio(
            kv_size=30,
            memory_utilization=0.3,
            inline_threshold=20,
            ratios=(0.2, 0.5, 0.8),
            memory_size=MEMORY,
        )
        ratios = [p.hash_index_ratio for p in points]
        assert 0.2 in ratios
        assert 0.8 not in ratios  # 30 B KVs at 0.3 util need dynamic room

    def test_utilization_sweep_monotone_feasible(self):
        points = sweep_memory_utilization(
            kv_size=13,
            hash_index_ratio=0.5,
            inline_threshold=20,
            utilizations=(0.1, 0.2, 0.3),
            memory_size=MEMORY,
        )
        assert len(points) >= 2
        utils = [p.memory_utilization for p in points]
        assert utils == sorted(utils)


class TestOptimizers:
    def test_optimal_ratio_prefers_upper_bound(self):
        ratio, accesses = optimal_hash_index_ratio(
            kv_size=30,
            required_utilization=0.1,
            inline_threshold=20,
            ratios=(0.2, 0.4, 0.6),
            memory_size=MEMORY,
        )
        assert ratio == 0.6  # all feasible & near-equal: pick the largest
        assert accesses > 2.0

    def test_optimal_ratio_respects_feasibility(self):
        ratio, __ = optimal_hash_index_ratio(
            kv_size=30,
            required_utilization=0.3,
            inline_threshold=20,
            ratios=(0.2, 0.5, 0.8),
            memory_size=MEMORY,
        )
        assert ratio <= 0.5

    def test_optimal_ratio_impossible_raises(self):
        with pytest.raises(CapacityError):
            optimal_hash_index_ratio(
                kv_size=13,
                required_utilization=0.95,
                inline_threshold=20,
                ratios=(0.3, 0.6),
                memory_size=MEMORY,
            )

    def test_optimal_inline_threshold(self):
        threshold = optimal_inline_threshold(
            kv_size=13,
            memory_utilization=0.15,
            hash_index_ratio=0.5,
            thresholds=(0, 15, 25),
            memory_size=MEMORY,
        )
        # Inlining a 13 B KV must beat not inlining it.
        assert threshold >= 15
