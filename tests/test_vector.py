"""Unit tests for vector operations and the function registry (Table 1)."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.operations import KVOperation, OpType
from repro.core.vector import (
    ASSIGN_MAX,
    COMPARE_AND_SWAP,
    FETCH_ADD,
    FETCH_SUB,
    FILTER_NONZERO,
    FILTER_POSITIVE,
    FuncKind,
    FunctionRegistry,
    MULTIPLY,
    REDUCE_MAX,
    REDUCE_MIN,
    REDUCE_SUM,
    SWAP,
    apply_operation,
    pack_elements,
    unpack_elements,
)
from repro.errors import KVDirectError


def q(*values):
    """Pack signed 64-bit little-endian elements."""
    return struct.pack("<%dq" % len(values), *values)


@pytest.fixture
def registry():
    return FunctionRegistry()


class TestElementPacking:
    def test_roundtrip(self):
        data = q(1, -2, 3)
        assert unpack_elements(data, 8, True) == [1, -2, 3]
        assert pack_elements([1, -2, 3], 8, True) == data

    def test_misaligned_rejected(self):
        with pytest.raises(KVDirectError):
            unpack_elements(b"\x00" * 7, 8, True)

    def test_overflow_wraps(self):
        packed = pack_elements([2**63], 8, True)  # wraps to -2^63
        assert unpack_elements(packed, 8, True) == [-(2**63)]

    def test_unsigned(self):
        packed = pack_elements([255], 1, False)
        assert unpack_elements(packed, 1, False) == [255]

    @given(st.lists(st.integers(-(2**31), 2**31 - 1), max_size=32))
    def test_roundtrip_property(self, values):
        packed = pack_elements(values, 4, True)
        assert unpack_elements(packed, 4, True) == values


class TestRegistry:
    def test_builtins_present(self, registry):
        for func_id in (FETCH_ADD, SWAP, COMPARE_AND_SWAP, REDUCE_SUM,
                        FILTER_NONZERO):
            assert func_id in registry

    def test_register_user_function(self, registry):
        func_id = registry.register(
            FuncKind.UPDATE, lambda v, d: v ^ d, name="xor"
        )
        assert registry.lookup(func_id).name == "xor"

    def test_unregistered_lookup_fails(self, registry):
        with pytest.raises(KVDirectError):
            registry.lookup(200)

    def test_bad_element_size(self, registry):
        with pytest.raises(KVDirectError):
            registry.register(FuncKind.UPDATE, lambda v, d: v, element_size=3)


class TestScalarUpdate:
    def _apply(self, registry, op, current):
        return apply_operation(op, current, registry)

    def test_fetch_add(self, registry):
        op = KVOperation.update(b"k", FETCH_ADD, q(5))
        new, result = self._apply(registry, op, q(10))
        assert new == q(15)
        assert result.value == q(10)  # returns the original value

    def test_fetch_sub(self, registry):
        op = KVOperation.update(b"k", FETCH_SUB, q(3))
        new, __ = self._apply(registry, op, q(10))
        assert new == q(7)

    def test_swap(self, registry):
        op = KVOperation.update(b"k", SWAP, q(99))
        new, result = self._apply(registry, op, q(1))
        assert new == q(99)
        assert result.value == q(1)

    def test_cas_success(self, registry):
        op = KVOperation.update(b"k", COMPARE_AND_SWAP, q(1, 2))
        new, result = self._apply(registry, op, q(1))
        assert new == q(2)
        assert result.value == q(1)

    def test_cas_failure_keeps_value(self, registry):
        op = KVOperation.update(b"k", COMPARE_AND_SWAP, q(7, 2))
        new, result = self._apply(registry, op, q(1))
        assert new == q(1)
        assert result.value == q(1)

    def test_missing_key_fails(self, registry):
        op = KVOperation.update(b"k", FETCH_ADD, q(1))
        new, result = self._apply(registry, op, None)
        assert new is None
        assert not result.ok

    def test_update_preserves_vector_tail(self, registry):
        """Scalar update touches only the first element."""
        op = KVOperation.update(b"k", FETCH_ADD, q(1))
        new, __ = self._apply(registry, op, q(10, 20, 30))
        assert new == q(11, 20, 30)

    def test_wrong_kind_rejected(self, registry):
        op = KVOperation.update(b"k", REDUCE_SUM, q(1))
        with pytest.raises(KVDirectError):
            self._apply(registry, op, q(0))

    def test_bad_param_size(self, registry):
        op = KVOperation.update(b"k", FETCH_ADD, b"\x01")
        with pytest.raises(KVDirectError):
            self._apply(registry, op, q(0))


class TestVectorUpdate:
    def test_scalar2vector(self, registry):
        op = KVOperation(
            OpType.UPDATE_SCALAR2VECTOR, b"v", func_id=FETCH_ADD, param=q(10)
        )
        new, result = apply_operation(op, q(1, 2, 3), registry)
        assert new == q(11, 12, 13)
        assert result.value == q(1, 2, 3)

    def test_vector2vector(self, registry):
        op = KVOperation(
            OpType.UPDATE_VECTOR2VECTOR,
            b"v",
            value=q(10, 20, 30),
            func_id=FETCH_ADD,
        )
        new, result = apply_operation(op, q(1, 2, 3), registry)
        assert new == q(11, 22, 33)
        assert result.value == q(1, 2, 3)

    def test_vector2vector_length_mismatch(self, registry):
        op = KVOperation(
            OpType.UPDATE_VECTOR2VECTOR, b"v", value=q(1), func_id=FETCH_ADD
        )
        with pytest.raises(KVDirectError):
            apply_operation(op, q(1, 2), registry)

    def test_multiply(self, registry):
        op = KVOperation(
            OpType.UPDATE_SCALAR2VECTOR, b"v", func_id=MULTIPLY, param=q(3)
        )
        new, __ = apply_operation(op, q(1, 2), registry)
        assert new == q(3, 6)

    def test_assign_max(self, registry):
        op = KVOperation(
            OpType.UPDATE_SCALAR2VECTOR, b"v", func_id=ASSIGN_MAX, param=q(5)
        )
        new, __ = apply_operation(op, q(1, 9), registry)
        assert new == q(5, 9)


class TestReduce:
    def test_sum(self, registry):
        op = KVOperation(OpType.REDUCE, b"v", func_id=REDUCE_SUM, param=q(0))
        new, result = apply_operation(op, q(1, 2, 3, 4), registry)
        assert new == q(1, 2, 3, 4)  # reduce does not mutate
        assert result.value == q(10)

    def test_sum_with_initial(self, registry):
        op = KVOperation(OpType.REDUCE, b"v", func_id=REDUCE_SUM, param=q(100))
        __, result = apply_operation(op, q(1, 2), registry)
        assert result.value == q(103)

    def test_max_min(self, registry):
        data = q(3, -7, 12, 0)
        op = KVOperation(OpType.REDUCE, b"v", func_id=REDUCE_MAX, param=q(-100))
        assert apply_operation(op, data, registry)[1].value == q(12)
        op = KVOperation(OpType.REDUCE, b"v", func_id=REDUCE_MIN, param=q(100))
        assert apply_operation(op, data, registry)[1].value == q(-7)

    def test_no_initial_uses_first_element(self, registry):
        op = KVOperation(OpType.REDUCE, b"v", func_id=REDUCE_SUM)
        __, result = apply_operation(op, q(5, 6), registry)
        assert result.value == q(11)

    def test_empty_vector_no_initial_fails(self, registry):
        op = KVOperation(OpType.REDUCE, b"v", func_id=REDUCE_SUM)
        with pytest.raises(KVDirectError):
            apply_operation(op, b"", registry)

    @given(st.lists(st.integers(-(2**40), 2**40), min_size=1, max_size=64))
    def test_sum_matches_python(self, values):
        registry = FunctionRegistry()
        op = KVOperation(OpType.REDUCE, b"v", func_id=REDUCE_SUM, param=q(0))
        __, result = apply_operation(op, q(*values), registry)
        assert unpack_elements(result.value, 8, True)[0] == sum(values)


class TestFilter:
    def test_nonzero(self, registry):
        op = KVOperation(OpType.FILTER, b"v", func_id=FILTER_NONZERO)
        __, result = apply_operation(op, q(0, 1, 0, 2), registry)
        assert result.value == q(1, 2)

    def test_positive(self, registry):
        op = KVOperation(OpType.FILTER, b"v", func_id=FILTER_POSITIVE)
        __, result = apply_operation(op, q(-1, 5, 0), registry)
        assert result.value == q(5)

    def test_all_filtered(self, registry):
        op = KVOperation(OpType.FILTER, b"v", func_id=FILTER_NONZERO)
        __, result = apply_operation(op, q(0, 0), registry)
        assert result.value == b""

    def test_sparse_vector_use_case(self, registry):
        """Section 3.2: fetch non-zero values of a sparse vector."""
        sparse = q(0, 0, 7, 0, 0, 0, 3, 0)
        op = KVOperation(OpType.FILTER, b"v", func_id=FILTER_NONZERO)
        __, result = apply_operation(op, sparse, registry)
        assert result.value == q(7, 3)


class TestPlainOps:
    def test_get(self, registry):
        op = KVOperation.get(b"k")
        new, result = apply_operation(op, b"value", registry)
        assert new == b"value"
        assert result.value == b"value"

    def test_get_missing(self, registry):
        __, result = apply_operation(KVOperation.get(b"k"), None, registry)
        assert not result.ok

    def test_put(self, registry):
        new, result = apply_operation(
            KVOperation.put(b"k", b"new"), b"old", registry
        )
        assert new == b"new"
        assert result.ok

    def test_delete(self, registry):
        new, result = apply_operation(
            KVOperation.delete(b"k"), b"old", registry
        )
        assert new is None
        assert result.ok

    def test_delete_missing(self, registry):
        __, result = apply_operation(KVOperation.delete(b"k"), None, registry)
        assert not result.ok
