"""Unit tests for workload generators."""

import collections

import pytest

from repro.core.operations import OpType
from repro.workloads import (
    KeySpace,
    UniformSampler,
    WorkloadSpec,
    YCSBGenerator,
    ZipfSampler,
)
from repro.workloads.keyspace import inline_kv_sizes, noninline_kv_sizes
from repro.workloads.ycsb import PAPER_PUT_RATIOS, paper_workloads


class TestKeySpace:
    def test_key_deterministic(self):
        ks = KeySpace(count=100, kv_size=32)
        assert ks.key(5) == ks.key(5)
        assert ks.key(5) != ks.key(6)
        assert len(ks.key(5)) == 8

    def test_value_deterministic_and_sized(self):
        ks = KeySpace(count=10, kv_size=32, seed=1)
        assert ks.value(3) == ks.value(3)
        assert len(ks.value(3)) == 24

    def test_different_seeds_differ(self):
        a = KeySpace(count=10, kv_size=32, seed=1)
        b = KeySpace(count=10, kv_size=32, seed=2)
        assert a.value(0) != b.value(0)

    def test_pairs(self):
        ks = KeySpace(count=5, kv_size=16)
        pairs = list(ks.pairs())
        assert len(pairs) == 5
        assert all(len(k) + len(v) == 16 for k, v in pairs)

    def test_bounds(self):
        ks = KeySpace(count=5, kv_size=16)
        with pytest.raises(IndexError):
            ks.key(5)

    def test_validation(self):
        with pytest.raises(ValueError):
            KeySpace(count=0, kv_size=16)
        with pytest.raises(ValueError):
            KeySpace(count=5, kv_size=8, key_size=8)
        with pytest.raises(ValueError):
            KeySpace(count=5, kv_size=300, key_size=2)

    def test_paper_kv_size_points(self):
        assert inline_kv_sizes()[:3] == [5, 10, 15]
        assert noninline_kv_sizes() == [62, 126, 254]


class TestUniformSampler:
    def test_range(self):
        sampler = UniformSampler(100, seed=1)
        samples = sampler.sample_many(1000)
        assert all(0 <= s < 100 for s in samples)

    def test_roughly_uniform(self):
        sampler = UniformSampler(10, seed=2)
        counts = collections.Counter(sampler.sample_many(10_000))
        for key in range(10):
            assert 800 < counts[key] < 1200

    def test_deterministic(self):
        a = UniformSampler(50, seed=3).sample_many(20)
        b = UniformSampler(50, seed=3).sample_many(20)
        assert a == b

    def test_invalid(self):
        with pytest.raises(ValueError):
            UniformSampler(0)


class TestZipfSampler:
    def test_range(self):
        sampler = ZipfSampler(1000, seed=1)
        assert all(0 <= s < 1000 for s in sampler.sample_many(1000))

    def test_skew_concentrates_mass(self):
        """With skew 0.99, the hottest keys dominate the distribution."""
        sampler = ZipfSampler(10_000, seed=1)
        hot = set(sampler.hot_keys(100))  # top 1 %
        samples = sampler.sample_many(20_000)
        hot_fraction = sum(s in hot for s in samples) / len(samples)
        assert hot_fraction > 0.4

    def test_rank_order(self):
        """Lower ranks (hotter keys) are sampled more often."""
        sampler = ZipfSampler(100, seed=7, shuffle=False)
        counts = collections.Counter(sampler.sample_many(50_000))
        assert counts[0] > counts[10] > counts[90]

    def test_zero_skew_is_uniform(self):
        sampler = ZipfSampler(10, skew=0.0, seed=1)
        counts = collections.Counter(sampler.sample_many(20_000))
        for key in range(10):
            assert 1600 < counts[key] < 2400

    def test_deterministic(self):
        a = ZipfSampler(500, seed=5).sample_many(50)
        b = ZipfSampler(500, seed=5).sample_many(50)
        assert a == b

    def test_shuffle_spreads_hot_keys(self):
        shuffled = ZipfSampler(1000, seed=1, shuffle=True)
        assert shuffled.hot_keys(3) != [0, 1, 2]

    def test_seed_none_shuffle_derived_from_sampler_rng(self, monkeypatch):
        """Regression: with ``seed=None`` the rank shuffle must be seeded
        from the (entropy-seeded) sampler RNG, not from a second
        independent ``RandomState(None)`` entropy pull - the draw stream
        and the rank mapping stay coherent with each other."""
        import numpy as np

        calls = []
        real = np.random.RandomState

        def spy(seed=None):
            calls.append(seed)
            return real(seed)

        monkeypatch.setattr(np.random, "RandomState", spy)
        sampler = ZipfSampler(100, seed=None)
        assert len(calls) == 1
        assert calls[0] is not None
        assert all(0 <= s < 100 for s in sampler.sample_many(50))

    def test_invalid(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)
        with pytest.raises(ValueError):
            ZipfSampler(10, skew=-1)


class TestWorkloadSpec:
    def test_name(self):
        assert WorkloadSpec(0.5, "zipf").name == "long-tail/50%PUT"
        assert WorkloadSpec(0.0, "uniform").name == "uniform/0%PUT"

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(put_ratio=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(distribution="pareto")

    def test_paper_workloads(self):
        specs = paper_workloads()
        assert len(specs) == 8
        assert {s.distribution for s in specs} == {"uniform", "zipf"}
        assert {s.put_ratio for s in specs} == set(PAPER_PUT_RATIOS)


class TestYCSBGenerator:
    def _generator(self, put_ratio=0.5, distribution="uniform"):
        ks = KeySpace(count=200, kv_size=32)
        return YCSBGenerator(ks, WorkloadSpec(put_ratio, distribution))

    def test_load_phase_covers_corpus(self):
        gen = self._generator()
        ops = list(gen.load_phase())
        assert len(ops) == 200
        assert all(op.op is OpType.PUT for op in ops)
        assert len({op.key for op in ops}) == 200

    def test_put_ratio_respected(self):
        gen = self._generator(put_ratio=0.3)
        ops = gen.operations(5000)
        puts = sum(op.op is OpType.PUT for op in ops)
        assert 0.25 < puts / len(ops) < 0.35

    def test_pure_get(self):
        gen = self._generator(put_ratio=0.0)
        assert all(op.op is OpType.GET for op in gen.operations(500))

    def test_pure_put(self):
        gen = self._generator(put_ratio=1.0)
        assert all(op.op is OpType.PUT for op in gen.operations(500))

    def test_zipf_workload_skews(self):
        gen = self._generator(put_ratio=0.0, distribution="zipf")
        ops = gen.operations(5000)
        counts = collections.Counter(op.key for op in ops)
        top = counts.most_common(1)[0][1]
        assert top > 5000 / 200 * 5  # far above the uniform share

    def test_sequences_assigned(self):
        gen = self._generator()
        ops = gen.operations(10)
        assert [op.seq for op in ops] == list(range(10))
