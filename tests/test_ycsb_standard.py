"""Tests for the standard YCSB A-F workload presets."""

import struct

import pytest

from repro.core.operations import OpType
from repro.core.store import KVDirectStore
from repro.errors import ConfigurationError
from repro.workloads import KeySpace
from repro.workloads.ycsb_standard import WORKLOADS, StandardYCSB, mix_of


@pytest.fixture
def keyspace():
    return KeySpace(count=500, kv_size=24)


def op_kinds(ops):
    return [op.op for op in ops]


class TestPresets:
    def test_supported_letters(self):
        assert WORKLOADS == ("A", "B", "C", "D", "E", "F")

    def test_unknown_rejected(self, keyspace):
        with pytest.raises(ConfigurationError):
            StandardYCSB(keyspace, "Z")

    def test_lowercase_accepted(self, keyspace):
        assert StandardYCSB(keyspace, "a").workload == "A"


class TestMixes:
    def _fractions(self, keyspace, workload, n=4000):
        gen = StandardYCSB(keyspace, workload, seed=1)
        ops = gen.operations(n)
        kinds = op_kinds(ops)
        return {
            "read": kinds.count(OpType.GET) / n,
            "write": kinds.count(OpType.PUT) / n,
            "rmw": kinds.count(OpType.UPDATE_SCALAR) / n,
        }

    def test_a_half_and_half(self, keyspace):
        mix = self._fractions(keyspace, "A")
        assert mix["read"] == pytest.approx(0.5, abs=0.05)
        assert mix["write"] == pytest.approx(0.5, abs=0.05)

    def test_b_read_mostly(self, keyspace):
        mix = self._fractions(keyspace, "B")
        assert mix["read"] == pytest.approx(0.95, abs=0.02)

    def test_c_read_only(self, keyspace):
        mix = self._fractions(keyspace, "C")
        assert mix["read"] == 1.0

    def test_d_inserts(self, keyspace):
        mix = self._fractions(keyspace, "D")
        assert mix["write"] == pytest.approx(0.05, abs=0.02)
        assert mix["read"] == pytest.approx(0.95, abs=0.02)

    def test_f_rmw(self, keyspace):
        mix = self._fractions(keyspace, "F")
        assert mix["rmw"] == pytest.approx(0.5, abs=0.05)

    def test_mix_of_documentation(self):
        assert mix_of("A") == {"read": 0.5, "update": 0.5}
        assert "rmw" in mix_of("F")
        assert mix_of("E") == {"scan": 0.95, "insert": 0.05}

    def test_e_scan_heavy(self, keyspace):
        gen = StandardYCSB(keyspace, "E", seed=1)
        ops = gen.operations(4000)
        kinds = op_kinds(ops)
        assert kinds.count(OpType.RANGE) / 4000 == pytest.approx(
            0.95, abs=0.02
        )
        assert kinds.count(OpType.PUT) / 4000 == pytest.approx(
            0.05, abs=0.02
        )
        counts = [op.count for op in ops if op.op is OpType.RANGE]
        assert min(counts) >= 1 and max(counts) <= 25


class TestSemantics:
    def _run(self, workload, keyspace):
        store = KVDirectStore.create(memory_size=2 << 20)
        gen = StandardYCSB(keyspace, workload, seed=2)
        for op in gen.load_phase():
            store.execute(op)
        results = [store.execute(op) for op in gen.operations(1500)]
        return store, results

    def test_a_executes_cleanly(self, keyspace):
        __, results = self._run("A", keyspace)
        assert all(r.ok for r in results)

    def test_c_reads_always_hit(self, keyspace):
        __, results = self._run("C", keyspace)
        assert all(r.found for r in results)

    def test_d_read_latest_hits(self, keyspace):
        """Reads target existing recent inserts, so almost all hit."""
        __, results = self._run("D", keyspace)
        hit_rate = sum(r.ok for r in results) / len(results)
        assert hit_rate > 0.99

    def test_f_counters_accumulate(self, keyspace):
        store, results = self._run("F", keyspace)
        assert all(r.ok for r in results)
        rmw_count = sum(
            1 for r in results if r.op is OpType.UPDATE_SCALAR
        )
        # Total increment across all counters equals the RMW op count.
        total = 0
        gen_base = 0
        for index in range(keyspace.count):
            value = store.get(keyspace.key(index))
            total += struct.unpack("<q", value)[0]
            gen_base += index
        assert total == gen_base + rmw_count

    def test_d_inserts_are_new_keys(self, keyspace):
        gen = StandardYCSB(keyspace, "D", seed=0)
        ops = gen.operations(500)
        inserted = {op.key for op in ops if op.op is OpType.PUT}
        assert all(key.startswith(b"new:") for key in inserted)

    def test_deterministic(self, keyspace):
        a = StandardYCSB(keyspace, "A", seed=9).operations(100)
        b = StandardYCSB(keyspace, "A", seed=9).operations(100)
        assert a == b

    def test_e_executes_cleanly_on_ordered_store(self, keyspace):
        store = KVDirectStore.create(memory_size=2 << 20,
                                     ordered_index=True)
        gen = StandardYCSB(keyspace, "E", seed=2)
        for op in gen.load_phase():
            store.execute(op)
        results = [store.execute(op) for op in gen.operations(1000)]
        assert all(r.ok for r in results)
