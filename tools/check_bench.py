#!/usr/bin/env python3
"""Lint ``BENCH_*.json`` benchmark snapshots.

Used by CI to validate the output of ``repro bench run`` and the
``--export-metrics`` benchmark option before a snapshot is diffed or
committed as a baseline.  Each file must:

* parse as JSON;
* validate against the :mod:`repro.obs.bench_history` schema
  (``schema`` version 1 or 2, required typed fields, nullable latency
  percentiles, nullable wall-clock fields required from schema 2 on,
  ``extra`` an object);
* carry finite numbers - NaN/Infinity are rejected even though Python's
  ``json`` accepts them.

Exits 0 when clean; prints every violation and exits 1 otherwise.

Usage::

    PYTHONPATH=src python tools/check_bench.py BENCH_small-ycsb.json [...]
"""

from __future__ import annotations

import json
import math
import sys
from typing import List

from repro.obs.bench_history import validate


def lint(path: str) -> List[str]:
    """All violations in one snapshot file (empty list = clean)."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON: {exc}"]
    problems = [f"{path}: {problem}" for problem in validate(data)]
    if isinstance(data, dict):
        for key, value in sorted(data.items()):
            if isinstance(value, float) and not math.isfinite(value):
                problems.append(f"{path}: field {key!r} is non-finite")
    return problems


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_bench.py FILE [FILE ...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        errors = lint(path)
        if errors:
            failures += 1
            for error in errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
