#!/usr/bin/env python3
"""Lint a Prometheus text-exposition (format 0.0.4) file.

Used by CI to validate the output of ``repro metrics`` and the
``--export-metrics`` benchmark option.  Checks, line by line:

* ``# TYPE <name> <kind>`` headers are well-formed, use a known kind, and
  never repeat a metric family;
* sample lines parse as ``name[{labels}] value`` with a valid metric
  name, valid label syntax, and a finite float value;
* every sample belongs to the family declared by the preceding TYPE
  header (allowing the summary/histogram ``_sum``/``_count``/``_bucket``
  suffixes);
* the file is non-empty and contains at least one sample.

Exits 0 when clean; prints every violation and exits 1 otherwise.

Usage::

    python tools/check_prom.py metrics.prom [more.prom ...]
"""

from __future__ import annotations

import math
import re
import sys
from typing import List

METRIC_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
LABEL_NAME = r"[a-zA-Z_][a-zA-Z0-9_]*"

_TYPE_RE = re.compile(rf"^# TYPE ({METRIC_NAME}) ([a-z]+)$")
_SAMPLE_RE = re.compile(
    rf"^({METRIC_NAME})(\{{[^}}]*\}})? (\S+)(?: \d+)?$"
)
_LABEL_RE = re.compile(rf'^{LABEL_NAME}="(?:[^"\\]|\\.)*"$')

KNOWN_KINDS = {"counter", "gauge", "summary", "histogram", "untyped"}

#: Suffixes a sample may add to its family name, per kind.
KIND_SUFFIXES = {
    "summary": ("", "_sum", "_count"),
    "histogram": ("", "_bucket", "_sum", "_count"),
}


def lint(path: str) -> List[str]:
    """All violations in one exposition file (empty list = clean)."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    errors: List[str] = []
    declared: set = set()
    family = None  # (name, kind) of the active TYPE header
    samples = 0

    def err(lineno: int, message: str) -> None:
        errors.append(f"{path}:{lineno}: {message}")

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if not line.startswith(("# TYPE ", "# HELP ")):
                # Bare comments are legal; nothing to check.
                continue
            if line.startswith("# HELP "):
                continue
            match = _TYPE_RE.match(line)
            if match is None:
                err(lineno, f"malformed TYPE header: {line!r}")
                family = None
                continue
            name, kind = match.groups()
            if kind not in KNOWN_KINDS:
                err(lineno, f"unknown metric kind {kind!r} for {name}")
            if name in declared:
                err(lineno, f"duplicate TYPE declaration for {name}")
            declared.add(name)
            family = (name, kind)
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            err(lineno, f"malformed sample line: {line!r}")
            continue
        name, labels, value = match.groups()
        samples += 1
        if labels is not None:
            for label in labels[1:-1].split(","):
                if label and not _LABEL_RE.match(label.strip()):
                    err(lineno, f"malformed label {label.strip()!r}")
        try:
            parsed = float(value)
        except ValueError:
            err(lineno, f"non-numeric sample value {value!r}")
        else:
            if math.isnan(parsed) or math.isinf(parsed):
                err(lineno, f"non-finite sample value {value!r}")
        if family is None:
            err(lineno, f"sample {name} precedes any TYPE header")
            continue
        base, kind = family
        suffixes = KIND_SUFFIXES.get(kind, ("",))
        if not any(
            name == base + s or (s == "" and name.startswith(base + "_"))
            for s in suffixes
        ) and not name.startswith(base):
            err(lineno, f"sample {name} outside family {base}")
    if samples == 0:
        errors.append(f"{path}: no samples found")
    return errors


def main(argv: List[str]) -> int:
    if not argv:
        print("usage: check_prom.py FILE [FILE ...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv:
        errors = lint(path)
        if errors:
            failures += 1
            for error in errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
