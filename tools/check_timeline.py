#!/usr/bin/env python3
"""Lint a ``repro timeline`` export.

Two modes, matching the two machine-readable formats the CLI emits:

JSONL (default) - the windowed-telemetry timeline written by
``repro timeline --format jsonl`` / ``--timeline PATH``.  Checks:

* every data line parses as a JSON object and is *canonical* -
  byte-equal to ``json.dumps(obj, sort_keys=True)`` - so two runs can
  be compared with ``cmp``;
* every row carries the ``shard``/``window``/``start_ns``/``end_ns``
  core fields, windows are contiguous per shard (start = previous end)
  and window indices never decrease;
* the ``# windows=N digest=...`` trailer (when present) matches the
  recomputed row count and SHA-256 over the data lines - the same
  digest :meth:`TimelineSampler.digest` reports;
* the file contains at least one row.

``--chrome`` - the Chrome trace-event JSON written by
``repro timeline --format chrome`` (``Tracer.export_chrome``).  Checks
the top-level object shape, that every event carries ``name``/``ph``/
``pid``/``tid``, uses a known phase (``M`` metadata or ``i`` instant),
and that instant events have finite numeric ``ts``.

Exits 0 when clean; prints every violation and exits 1 otherwise.

Usage::

    python tools/check_timeline.py timeline.jsonl [more.jsonl ...]
    python tools/check_timeline.py --chrome trace.json
"""

from __future__ import annotations

import hashlib
import json
import math
import re
import sys
from typing import List

#: Fields every timeline row must carry.
CORE_FIELDS = ("shard", "window", "start_ns", "end_ns")

_TRAILER_RE = re.compile(r"^# windows=(\d+) digest=([0-9a-f]{64})$")

#: Chrome trace-event phases the exporter emits.
KNOWN_PHASES = {"M", "i"}


def lint(path: str) -> List[str]:
    """All violations in one timeline JSONL file (empty list = clean)."""
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    errors: List[str] = []

    def err(lineno: int, message: str) -> None:
        errors.append(f"{path}:{lineno}: {message}")

    rows = 0
    max_window = -1
    #: shard -> end_ns of its previous row (windows must be contiguous).
    closed: dict = {}
    hasher = hashlib.sha256()
    trailer = None
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            match = _TRAILER_RE.match(line)
            if match is None:
                err(lineno, f"malformed trailer comment: {line!r}")
            elif trailer is not None:
                err(lineno, "duplicate digest trailer")
            else:
                trailer = (int(match.group(1)), match.group(2), lineno)
            continue
        if trailer is not None:
            err(lineno, "data line after the digest trailer")
        try:
            row = json.loads(line)
        except ValueError as exc:
            err(lineno, f"invalid JSON: {exc}")
            continue
        if not isinstance(row, dict):
            err(lineno, "row is not a JSON object")
            continue
        canonical = json.dumps(row, sort_keys=True)
        if line != canonical:
            err(lineno, "row is not canonical JSON "
                        "(json.dumps(..., sort_keys=True))")
        rows += 1
        hasher.update(line.encode())
        hasher.update(b"\n")
        missing = [key for key in CORE_FIELDS if key not in row]
        if missing:
            err(lineno, f"missing core fields: {', '.join(missing)}")
            continue
        window = row["window"]
        start, end = row["start_ns"], row["end_ns"]
        for key, value in (("start_ns", start), ("end_ns", end)):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                err(lineno, f"{key} must be a number, got {value!r}")
                break
        else:
            if end < start:
                err(lineno, f"window ends before it starts "
                            f"({start} .. {end})")
            if window < max_window:
                err(lineno, f"window index went backwards "
                            f"({max_window} -> {window})")
            max_window = max(max_window, window)
            shard = row["shard"]
            prev_end = closed.get(shard)
            if prev_end is not None and start != prev_end:
                err(lineno, f"shard {shard!r} windows not contiguous: "
                            f"starts at {start}, previous ended {prev_end}")
            closed[shard] = end
    if rows == 0:
        errors.append(f"{path}: no timeline rows found")
    if trailer is not None:
        windows, digest, lineno = trailer
        if max_window >= 0 and windows != max_window + 1:
            err(lineno, f"trailer says windows={windows}, rows cover "
                        f"{max_window + 1}")
        recomputed = hasher.hexdigest()
        if digest != recomputed:
            err(lineno, f"trailer digest {digest} != recomputed "
                        f"{recomputed}")
    return errors


def lint_chrome(path: str) -> List[str]:
    """All violations in one Chrome trace-event JSON export."""
    try:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        return [f"{path}: unreadable: {exc}"]
    except ValueError as exc:
        return [f"{path}: invalid JSON: {exc}"]
    errors: List[str] = []
    if not isinstance(data, dict):
        return [f"{path}: top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: missing traceEvents list"]
    if not events:
        errors.append(f"{path}: traceEvents is empty")
    instants = 0
    for index, event in enumerate(events):
        where = f"{path}: traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: event is not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                errors.append(f"{where}: missing {key!r}")
        phase = event.get("ph")
        if phase not in KNOWN_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
        if phase == "i":
            instants += 1
            ts = event.get("ts")
            if (
                not isinstance(ts, (int, float))
                or isinstance(ts, bool)
                or math.isnan(ts)
                or math.isinf(ts)
            ):
                errors.append(f"{where}: instant event needs a finite "
                              f"numeric ts, got {ts!r}")
            elif ts < 0:
                errors.append(f"{where}: negative ts {ts!r}")
    if events and instants == 0:
        errors.append(f"{path}: no instant events (only metadata)")
    return errors


def main(argv: List[str]) -> int:
    chrome = False
    if argv and argv[0] == "--chrome":
        chrome = True
        argv = argv[1:]
    if not argv:
        print("usage: check_timeline.py [--chrome] FILE [FILE ...]",
              file=sys.stderr)
        return 2
    check = lint_chrome if chrome else lint
    failures = 0
    for path in argv:
        errors = check(path)
        if errors:
            failures += 1
            for error in errors:
                print(error, file=sys.stderr)
        else:
            print(f"{path}: OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
